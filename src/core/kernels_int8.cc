#include "edgebench/core/kernels_int8.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"

namespace edgebench
{
namespace core
{

namespace
{

std::int8_t
requantize(double real, const QuantParams& out_qp)
{
    const double q = std::nearbyint(real / out_qp.scale) +
        out_qp.zeroPoint;
    return static_cast<std::int8_t>(std::clamp(q, -128.0, 127.0));
}

} // namespace

Tensor
conv2dInt8(const Tensor& input, const Tensor& weights, const Tensor& bias,
           const Conv2dGeom& g, const QuantParams& out_qp)
{
    g.validate();
    EB_CHECK(input.dtype() == DType::kI8 &&
                 weights.dtype() == DType::kI8,
             "conv2dInt8: inputs must be int8");
    EB_CHECK(input.shape() == Shape({g.n, g.inC, g.inH, g.inW}),
             "conv2dInt8: bad input shape");
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    EB_CHECK(weights.shape() == Shape({g.outC, cg, g.kH, g.kW}),
             "conv2dInt8: bad weight shape");
    const bool has_bias = bias.shape() == Shape{g.outC};

    const QuantParams iq = input.quantParams();
    const QuantParams wq = weights.quantParams();
    const double acc_scale = iq.scale * wq.scale;

    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    // Build fp32 staging of the quantized result, then quantize once.
    std::vector<float> staging(
        static_cast<std::size_t>(g.n * g.outC * oh * ow));
    auto in = input.qdata();
    auto w = weights.qdata();
    // Partition (batch, output-channel) planes across workers; integer
    // accumulation per element is order-independent anyway, but the
    // per-element loop order is also left untouched.
    parallelFor(
        g.n * g.outC,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const std::int64_t b = p / g.outC;
                const std::int64_t oc = p % g.outC;
                const std::int64_t grp = oc / ocg;
                for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    std::int64_t acc = 0;
                    for (std::int64_t c = 0; c < cg; ++c) {
                        const std::int64_t ic = grp * cg + c;
                        for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                            const std::int64_t iy =
                                oy * g.strideH - g.padH + ky * g.dilH;
                            for (std::int64_t kx = 0; kx < g.kW;
                                 ++kx) {
                                const std::int64_t ix = ox * g.strideW -
                                    g.padW + kx * g.dilW;
                                // Out-of-bounds reads behave as
                                // real-zero input (quantized value ==
                                // input zero point).
                                const std::int32_t qi =
                                    (iy >= 0 && iy < g.inH && ix >= 0 &&
                                     ix < g.inW)
                                        ? in[((b * g.inC + ic) * g.inH +
                                              iy) * g.inW + ix]
                                        : iq.zeroPoint;
                                const std::int32_t qw =
                                    w[((oc * cg + c) * g.kH + ky) *
                                          g.kW + kx];
                                acc += static_cast<std::int64_t>(
                                           qi - iq.zeroPoint) *
                                    (qw - wq.zeroPoint);
                            }
                        }
                    }
                    double real = static_cast<double>(acc) * acc_scale;
                    if (has_bias)
                        real += bias.at(oc);
                    staging[static_cast<std::size_t>(
                        (p * oh + oy) * ow + ox)] =
                        static_cast<float>(real);
                }
            }
        },
        /*min_grain=*/2);
    Tensor staged(Shape{g.n, g.outC, oh, ow}, std::move(staging));
    return staged.toInt8(out_qp);
}

Tensor
denseInt8(const Tensor& input, const Tensor& weights, const Tensor& bias,
          const DenseGeom& g, const QuantParams& out_qp)
{
    g.validate();
    EB_CHECK(input.dtype() == DType::kI8 &&
                 weights.dtype() == DType::kI8,
             "denseInt8: inputs must be int8");
    EB_CHECK(input.numel() == g.batch * g.inFeatures,
             "denseInt8: bad input size");
    EB_CHECK(weights.shape() == Shape({g.outFeatures, g.inFeatures}),
             "denseInt8: bad weight shape");
    const bool has_bias = bias.shape() == Shape{g.outFeatures};

    const QuantParams iq = input.quantParams();
    const QuantParams wq = weights.quantParams();
    const double acc_scale = iq.scale * wq.scale;

    std::vector<float> staging(
        static_cast<std::size_t>(g.batch * g.outFeatures));
    auto in = input.qdata();
    auto w = weights.qdata();
    // One output feature per task, flattened over the batch.
    parallelFor(
        g.batch * g.outFeatures,
        [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t j = j0; j < j1; ++j) {
                const std::int64_t b = j / g.outFeatures;
                const std::int64_t of = j % g.outFeatures;
                std::int64_t acc = 0;
                const std::int8_t* irow = in.data() + b * g.inFeatures;
                const std::int8_t* wrow = w.data() + of * g.inFeatures;
                for (std::int64_t i = 0; i < g.inFeatures; ++i)
                    acc += static_cast<std::int64_t>(
                               irow[i] - iq.zeroPoint) *
                        (wrow[i] - wq.zeroPoint);
                double real = static_cast<double>(acc) * acc_scale;
                if (has_bias)
                    real += bias.at(of);
                staging[static_cast<std::size_t>(j)] =
                    static_cast<float>(real);
            }
        },
        /*min_grain=*/16);
    Tensor staged(Shape{g.batch, g.outFeatures}, std::move(staging));
    return staged.toInt8(out_qp);
}

namespace
{

Tensor
clampInt8(const Tensor& input, double real_lo, double real_hi)
{
    EB_CHECK(input.dtype() == DType::kI8, "clampInt8: not int8");
    const QuantParams qp = input.quantParams();
    const std::int32_t qlo = std::max<std::int32_t>(
        -128,
        static_cast<std::int32_t>(
            std::lround(real_lo / qp.scale + qp.zeroPoint)));
    std::int32_t qhi = 127;
    if (std::isfinite(real_hi)) {
        qhi = std::min<std::int32_t>(
            127, static_cast<std::int32_t>(
                     std::lround(real_hi / qp.scale + qp.zeroPoint)));
    }
    std::vector<float> staging(static_cast<std::size_t>(input.numel()));
    auto q = input.qdata();
    parallelFor(
        static_cast<std::int64_t>(q.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                const std::int32_t clamped = std::clamp<std::int32_t>(
                    q[i], qlo, qhi);
                staging[static_cast<std::size_t>(i)] =
                    static_cast<float>(dequantizeValue(
                        static_cast<std::int8_t>(clamped), qp));
            }
        },
        /*min_grain=*/4096);
    Tensor staged(input.shape(), std::move(staging));
    return staged.toInt8(qp);
}

} // namespace

Tensor
reluInt8(const Tensor& input)
{
    return clampInt8(input, 0.0,
                     std::numeric_limits<double>::infinity());
}

Tensor
relu6Int8(const Tensor& input)
{
    return clampInt8(input, 0.0, 6.0);
}

Tensor
addInt8(const Tensor& a, const Tensor& b, const QuantParams& out_qp)
{
    EB_CHECK(a.dtype() == DType::kI8 && b.dtype() == DType::kI8,
             "addInt8: inputs must be int8");
    EB_CHECK(sameShape(a.shape(), b.shape()), "addInt8: shape mismatch");
    const QuantParams aq = a.quantParams();
    const QuantParams bq = b.quantParams();
    auto pa = a.qdata();
    auto pb = b.qdata();
    // Re-wrap as an int8 tensor via a staging fp32 tensor; per element
    // the value goes dequantize -> add -> requantize -> dequantize,
    // exactly as the former two-pass loop computed it.
    std::vector<float> staging(pa.size());
    parallelFor(
        static_cast<std::int64_t>(pa.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                const double real = dequantizeValue(pa[i], aq) +
                    dequantizeValue(pb[i], bq);
                staging[static_cast<std::size_t>(i)] =
                    static_cast<float>(dequantizeValue(
                        requantize(real, out_qp), out_qp));
            }
        },
        /*min_grain=*/4096);
    Tensor staged(a.shape(), std::move(staging));
    return staged.toInt8(out_qp);
}

} // namespace core
} // namespace edgebench
