#include "edgebench/core/gemm_packed.hh"

#include <algorithm>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/simd.hh"

namespace edgebench
{
namespace core
{

namespace
{

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;
constexpr std::int64_t KC = kGemmKChunk;

/**
 * Accumulate an MR x NR tile over @p kc steps. `acc` lives in the
 * caller's frame; with the fixed MR/NR trip counts the compiler keeps
 * it register-resident, so the inner loop performs one packed-B load,
 * one packed-A broadcast and MR*NR mul-adds per step with no C
 * traffic at all.
 */
inline void
microKernel(const float* __restrict ap, const float* __restrict bp,
            std::int64_t kc, float* __restrict acc)
{
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* a = ap + p * MR;
        const float* b = bp + p * NR;
        for (std::int64_t i = 0; i < MR; ++i) {
            const float av = a[i];
            for (std::int64_t j = 0; j < NR; ++j)
                acc[i * NR + j] += av * b[j];
        }
    }
}

#if EDGEBENCH_SIMD_COMPILED

/**
 * Vector twin of microKernel: each of the MR rows accumulates one
 * f32x8 across the NR=8 output columns, k innermost and unsplit, so
 * lane j of row i performs the exact mul/add sequence the scalar
 * kernel performs for acc[i*NR+j] (-ffp-contract=off keeps the
 * compiler from fusing them into fmas).
 */
inline void
microKernelSimd(const float* __restrict ap, const float* __restrict bp,
                std::int64_t kc, f32x8* __restrict acc)
{
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* a = ap + p * MR;
        const f32x8 b = loadF32x8(bp + p * NR);
        for (std::int64_t i = 0; i < MR; ++i)
            acc[i] += splatF32x8(a[i]) * b;
    }
}

/** Vector epilogue — per-lane identical to applyEpilogueAct. */
inline f32x8
applyActSimd(f32x8 v, EpilogueAct act)
{
    switch (act) {
        case EpilogueAct::kRelu:
            return reluF32x8(v);
        case EpilogueAct::kRelu6:
            return clampF32x8(v, 0.0f, 6.0f);
        case EpilogueAct::kNone:
            break;
    }
    return v;
}

#endif // EDGEBENCH_SIMD_COMPILED

} // namespace

PackedAView
packAInto(std::int64_t m, std::int64_t k, std::span<const float> a,
          std::span<float> storage)
{
    EB_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
             "packAInto: bad A size " << a.size() << " for " << m << "x"
                                      << k);
    EB_CHECK(static_cast<std::int64_t>(storage.size()) >=
                 packedASize(m, k),
             "packAInto: storage too small");
    const PackedAView v{m, k, storage.data()};
    const std::int64_t mp = v.mPanels();
    const std::int64_t kch = v.kChunks();
    const std::int64_t stride = v.panelStride();
    float* out = storage.data();
    parallelFor(
        mp,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t ip = p0; ip < p1; ++ip) {
                float* flags = out + ip * stride;
                float* vals = flags + kch;
                for (std::int64_t p = 0; p < k; ++p)
                    for (std::int64_t i = 0; i < MR; ++i) {
                        const std::int64_t row = ip * MR + i;
                        vals[p * MR + i] =
                            row < m ? a[row * k + p] : 0.0f;
                    }
                for (std::int64_t kc = 0; kc < kch; ++kc) {
                    const std::int64_t p0k = kc * KC;
                    const std::int64_t p1k = std::min(k, p0k + KC);
                    bool all_zero = true;
                    for (std::int64_t p = p0k * MR; p < p1k * MR; ++p)
                        if (vals[p] != 0.0f) {
                            all_zero = false;
                            break;
                        }
                    flags[kc] = all_zero ? 1.0f : 0.0f;
                }
            }
        },
        /*min_grain=*/2);
    return v;
}

PackedA
packA(std::int64_t m, std::int64_t k, std::span<const float> a)
{
    PackedA packed;
    packed.m = m;
    packed.k = k;
    packed.data.resize(static_cast<std::size_t>(packedASize(m, k)));
    packAInto(m, k, a, packed.data);
    return packed;
}

void
packBInto(std::int64_t n, std::int64_t k, std::span<const float> b,
          std::span<float> storage)
{
    EB_CHECK(static_cast<std::int64_t>(b.size()) == k * n,
             "packBInto: bad B size " << b.size() << " for " << k << "x"
                                      << n);
    EB_CHECK(static_cast<std::int64_t>(storage.size()) >=
                 packedBSize(n, k),
             "packBInto: storage too small");
    const std::int64_t np = gemmTiles(n, NR);
    float* out = storage.data();
    parallelFor(
        np,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t jp = p0; jp < p1; ++jp) {
                float* panel = out + jp * k * NR;
                const std::int64_t j0 = jp * NR;
                const std::int64_t jlim = std::min<std::int64_t>(
                    NR, n - j0);
                if (jlim == NR) {
                    for (std::int64_t p = 0; p < k; ++p)
                        std::copy_n(b.data() + p * n + j0, NR,
                                    panel + p * NR);
                } else {
                    for (std::int64_t p = 0; p < k; ++p) {
                        std::copy_n(b.data() + p * n + j0, jlim,
                                    panel + p * NR);
                        std::fill_n(panel + p * NR + jlim, NR - jlim,
                                    0.0f);
                    }
                }
            }
        },
        /*min_grain=*/2);
}

void
gemmPacked(const PackedAView& a, std::int64_t n,
           std::span<const float> packed_b, std::span<float> c,
           const GemmEpilogue& ep)
{
    EB_CHECK(a.data != nullptr, "gemmPacked: unpacked A");
    EB_CHECK(static_cast<std::int64_t>(packed_b.size()) >=
                 packedBSize(n, a.k),
             "gemmPacked: packed B too small");
    EB_CHECK(static_cast<std::int64_t>(c.size()) == a.m * n,
             "gemmPacked: bad C size");
    EB_CHECK(ep.bias.empty() ||
                 static_cast<std::int64_t>(ep.bias.size()) == a.m,
             "gemmPacked: bias size " << ep.bias.size()
                                      << " != rows " << a.m);
    const std::int64_t m = a.m;
    const std::int64_t k = a.k;
    const std::int64_t mp = a.mPanels();
    const std::int64_t np = gemmTiles(n, NR);
    const std::int64_t kch = a.kChunks();
    const bool has_bias = !ep.bias.empty();
    // Resolve the engine once, outside the parallel region, so every
    // worker runs the same microkernel.
    const bool use_simd = simdActive();
    // One task per C tile, B-panel-major so a worker's contiguous
    // tile range reuses its packed-B panel across A panels. Each tile
    // is accumulated k-ascending start-to-finish by one worker, so
    // the partition never changes results.
#if EDGEBENCH_SIMD_COMPILED
    if (use_simd) {
        parallelFor(
            np * mp,
            [&](std::int64_t t0, std::int64_t t1) {
                f32x8 acc[MR];
                for (std::int64_t t = t0; t < t1; ++t) {
                    const std::int64_t jp = t / mp;
                    const std::int64_t ip = t % mp;
                    const float* flags = a.panelFlags(ip);
                    const float* apanel = a.panelValues(ip);
                    const float* bpanel = packed_b.data() + jp * k * NR;
                    for (std::int64_t i = 0; i < MR; ++i)
                        acc[i] = splatF32x8(0.0f);
                    for (std::int64_t kc = 0; kc < kch; ++kc) {
                        if (flags[kc] != 0.0f)
                            continue; // whole MR x chunk block pruned
                        const std::int64_t p0 = kc * KC;
                        const std::int64_t p1 = std::min(k, p0 + KC);
                        microKernelSimd(apanel + p0 * MR,
                                        bpanel + p0 * NR, p1 - p0, acc);
                    }
                    const std::int64_t i0 = ip * MR;
                    const std::int64_t j0 = jp * NR;
                    const std::int64_t ilim = std::min(MR, m - i0);
                    const std::int64_t jlim = std::min(NR, n - j0);
                    if (jlim == NR) {
                        // Full-width tile: fused epilogue + store stay
                        // vectorized (per-lane math identical to the
                        // scalar epilogue below).
                        for (std::int64_t i = 0; i < ilim; ++i) {
                            f32x8 v = acc[i];
                            if (has_bias)
                                v += splatF32x8(ep.bias[i0 + i]);
                            v = applyActSimd(v, ep.act);
                            storeF32x8(&c[(i0 + i) * n + j0], v);
                        }
                    } else {
                        for (std::int64_t i = 0; i < ilim; ++i) {
                            const float* row =
                                reinterpret_cast<const float*>(&acc[i]);
                            for (std::int64_t j = 0; j < jlim; ++j) {
                                float v = row[j];
                                if (has_bias)
                                    v += ep.bias[i0 + i];
                                c[(i0 + i) * n + j0 + j] =
                                    applyEpilogueAct(v, ep.act);
                            }
                        }
                    }
                }
            },
            /*min_grain=*/2);
        return;
    }
#else
    (void)use_simd;
#endif
    parallelFor(
        np * mp,
        [&](std::int64_t t0, std::int64_t t1) {
            float acc[MR * NR];
            for (std::int64_t t = t0; t < t1; ++t) {
                const std::int64_t jp = t / mp;
                const std::int64_t ip = t % mp;
                const float* flags = a.panelFlags(ip);
                const float* apanel = a.panelValues(ip);
                const float* bpanel = packed_b.data() + jp * k * NR;
                std::fill(acc, acc + MR * NR, 0.0f);
                for (std::int64_t kc = 0; kc < kch; ++kc) {
                    if (flags[kc] != 0.0f)
                        continue; // whole MR x chunk block pruned
                    const std::int64_t p0 = kc * KC;
                    const std::int64_t p1 = std::min(k, p0 + KC);
                    microKernel(apanel + p0 * MR, bpanel + p0 * NR,
                                p1 - p0, acc);
                }
                const std::int64_t i0 = ip * MR;
                const std::int64_t j0 = jp * NR;
                const std::int64_t ilim = std::min(MR, m - i0);
                const std::int64_t jlim = std::min(NR, n - j0);
                for (std::int64_t i = 0; i < ilim; ++i)
                    for (std::int64_t j = 0; j < jlim; ++j) {
                        float v = acc[i * NR + j];
                        if (has_bias)
                            v += ep.bias[i0 + i];
                        c[(i0 + i) * n + j0 + j] =
                            applyEpilogueAct(v, ep.act);
                    }
            }
        },
        /*min_grain=*/2);
}

void
gemmPackB(const PackedAView& a, std::int64_t n,
          std::span<const float> b, std::span<float> c,
          const GemmEpilogue& ep)
{
    std::span<float> packed_b = scratchF32(
        ScratchSlot::kGemmPackB,
        static_cast<std::size_t>(packedBSize(n, a.k)));
    packBInto(n, a.k, b, packed_b);
    gemmPacked(a, n, packed_b, c, ep);
}

void
gemvPackedAcc(const PackedAView& a, std::span<const float> x,
              std::span<double> y)
{
    EB_CHECK(a.data != nullptr, "gemvPackedAcc: unpacked A");
    EB_CHECK(static_cast<std::int64_t>(x.size()) == a.k,
             "gemvPackedAcc: bad x size");
    EB_CHECK(static_cast<std::int64_t>(y.size()) == a.m,
             "gemvPackedAcc: bad y size");
    const std::int64_t m = a.m;
    const std::int64_t k = a.k;
    const std::int64_t kch = a.kChunks();
    parallelFor(
        a.mPanels(),
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t ip = p0; ip < p1; ++ip) {
                const float* flags = a.panelFlags(ip);
                const float* vals = a.panelValues(ip);
                const std::int64_t i0 = ip * MR;
                const std::int64_t ilim = std::min(MR, m - i0);
                double acc[MR] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
                for (std::int64_t i = 0; i < ilim; ++i)
                    acc[i] = y[i0 + i];
                for (std::int64_t kc = 0; kc < kch; ++kc) {
                    if (flags[kc] != 0.0f)
                        continue;
                    const std::int64_t pe = std::min(k, (kc + 1) * KC);
                    for (std::int64_t p = kc * KC; p < pe; ++p) {
                        const double xv = x[p];
                        const float* av = vals + p * MR;
                        for (std::int64_t i = 0; i < MR; ++i)
                            acc[i] +=
                                static_cast<double>(av[i]) * xv;
                    }
                }
                for (std::int64_t i = 0; i < ilim; ++i)
                    y[i0 + i] = acc[i];
            }
        },
        /*min_grain=*/2);
}

} // namespace core
} // namespace edgebench
