#include "edgebench/core/gemm_packed_int8.hh"

#include <algorithm>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/simd.hh"

namespace edgebench
{
namespace core
{

namespace
{

constexpr std::int64_t MR = kGemmInt8MR;
constexpr std::int64_t NR = kGemmInt8NR;

/**
 * Accumulate an MR x NR int32 tile of raw q_a * q_b products over
 * @p kc steps. Zero-point corrections are not applied here — they are
 * rank-one terms folded into the epilogue — so the inner loop is one
 * packed-B load, one packed-A broadcast and MR*NR integer mul-adds
 * per step. Safe against overflow for kc <= kGemmInt8MaxK (products
 * are bounded by 2^14, so |acc| < 2^16 * 2^14 = 2^30).
 */
inline void
microKernelInt8(const std::int8_t* __restrict ap,
                const std::int8_t* __restrict bp, std::int64_t kc,
                std::int32_t* __restrict acc)
{
    for (std::int64_t p = 0; p < kc; ++p) {
        const std::int8_t* a = ap + p * MR;
        const std::int8_t* b = bp + p * NR;
        for (std::int64_t i = 0; i < MR; ++i) {
            const std::int32_t av = a[i];
            for (std::int64_t j = 0; j < NR; ++j)
                acc[i * NR + j] += av * b[j];
        }
    }
}

/**
 * Folded per-row epilogue constant:
 * bias_q[i] - b_zp * sum_p A[i,p] + k * a_zp * b_zp. Together with
 * the per-column `-a_zp * sum_p B[p,j]` this turns the raw product
 * sum into the full zero-point-corrected accumulator (see
 * docs/QUANTIZATION.md for the algebra).
 */
inline std::int64_t
rowCorrection(std::int64_t bias_q, std::int32_t row_sum,
              std::int64_t k, std::int32_t a_zp, std::int32_t b_zp)
{
    return bias_q - static_cast<std::int64_t>(b_zp) * row_sum +
        k * a_zp * b_zp;
}

#if EDGEBENCH_SIMD_COMPILED

/**
 * Vector twin of microKernelInt8: each of the MR rows accumulates one
 * i32x8 across the NR=8 output columns (B widened int8 -> int32 once
 * per step). Integer accumulation is exact, so this is trivially
 * bit-identical to the scalar kernel; the same k-order is kept anyway.
 */
inline void
microKernelInt8Simd(const std::int8_t* __restrict ap,
                    const std::int8_t* __restrict bp, std::int64_t kc,
                    i32x8* __restrict acc)
{
    for (std::int64_t p = 0; p < kc; ++p) {
        const std::int8_t* a = ap + p * MR;
        const i32x8 b = widenI8ToI32x8(bp + p * NR);
        for (std::int64_t i = 0; i < MR; ++i)
            acc[i] += splatI32x8(a[i]) * b;
    }
}

#endif // EDGEBENCH_SIMD_COMPILED

} // namespace

PackedAI8View
packAInt8Into(std::int64_t m, std::int64_t k,
              std::span<const std::int8_t> a,
              std::span<std::int8_t> values,
              std::span<std::int32_t> row_sums)
{
    EB_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
             "packAInt8Into: bad A size " << a.size() << " for " << m
                                          << "x" << k);
    EB_CHECK(k <= kGemmInt8MaxK,
             "packAInt8Into: k " << k << " exceeds int8 GEMM bound "
                                 << kGemmInt8MaxK);
    EB_CHECK(static_cast<std::int64_t>(values.size()) >=
                 packedAI8ValueCount(m, k),
             "packAInt8Into: value storage too small");
    EB_CHECK(static_cast<std::int64_t>(row_sums.size()) >=
                 packedAI8SumCount(m),
             "packAInt8Into: row-sum storage too small");
    const PackedAI8View v{m, k, values.data(), row_sums.data()};
    std::int8_t* vals_out = values.data();
    std::int32_t* sums_out = row_sums.data();
    parallelFor(
        v.mPanels(),
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t ip = p0; ip < p1; ++ip) {
                std::int8_t* vals = vals_out + ip * k * MR;
                std::int32_t* sums = sums_out + ip * MR;
                for (std::int64_t p = 0; p < k; ++p)
                    for (std::int64_t i = 0; i < MR; ++i) {
                        const std::int64_t row = ip * MR + i;
                        vals[p * MR + i] = row < m
                            ? a[row * k + p]
                            : static_cast<std::int8_t>(0);
                    }
                for (std::int64_t i = 0; i < MR; ++i) {
                    const std::int64_t row = ip * MR + i;
                    std::int32_t s = 0;
                    if (row < m)
                        for (std::int64_t p = 0; p < k; ++p)
                            s += a[row * k + p];
                    sums[i] = s;
                }
            }
        },
        /*min_grain=*/2);
    return v;
}

PackedAI8
packAInt8(std::int64_t m, std::int64_t k,
          std::span<const std::int8_t> a)
{
    PackedAI8 packed;
    packed.m = m;
    packed.k = k;
    packed.values.resize(
        static_cast<std::size_t>(packedAI8ValueCount(m, k)));
    packed.rowSums.resize(
        static_cast<std::size_t>(packedAI8SumCount(m)));
    packAInt8Into(m, k, a, packed.values, packed.rowSums);
    return packed;
}

void
packBInt8Into(std::int64_t n, std::int64_t k,
              std::span<const std::int8_t> b,
              std::span<std::int8_t> storage,
              std::span<std::int32_t> col_sums)
{
    EB_CHECK(static_cast<std::int64_t>(b.size()) == k * n,
             "packBInt8Into: bad B size " << b.size() << " for " << k
                                          << "x" << n);
    EB_CHECK(k <= kGemmInt8MaxK,
             "packBInt8Into: k " << k << " exceeds int8 GEMM bound "
                                 << kGemmInt8MaxK);
    EB_CHECK(static_cast<std::int64_t>(storage.size()) >=
                 packedBI8ValueCount(n, k),
             "packBInt8Into: storage too small");
    EB_CHECK(static_cast<std::int64_t>(col_sums.size()) >=
                 packedBI8SumCount(n),
             "packBInt8Into: column-sum storage too small");
    const std::int64_t np = gemmInt8Tiles(n, NR);
    std::int8_t* out = storage.data();
    std::int32_t* sums_out = col_sums.data();
    parallelFor(
        np,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t jp = p0; jp < p1; ++jp) {
                std::int8_t* panel = out + jp * k * NR;
                std::int32_t* sums = sums_out + jp * NR;
                const std::int64_t j0 = jp * NR;
                const std::int64_t jlim = std::min<std::int64_t>(
                    NR, n - j0);
                if (jlim == NR) {
                    for (std::int64_t p = 0; p < k; ++p)
                        std::copy_n(b.data() + p * n + j0, NR,
                                    panel + p * NR);
                } else {
                    for (std::int64_t p = 0; p < k; ++p) {
                        std::copy_n(b.data() + p * n + j0, jlim,
                                    panel + p * NR);
                        std::fill_n(panel + p * NR + jlim, NR - jlim,
                                    static_cast<std::int8_t>(0));
                    }
                }
                for (std::int64_t j = 0; j < NR; ++j) {
                    std::int32_t s = 0;
                    if (j < jlim)
                        for (std::int64_t p = 0; p < k; ++p)
                            s += panel[p * NR + j];
                    sums[j] = s;
                }
            }
        },
        /*min_grain=*/2);
}

void
gemmPackedInt8(const PackedAI8View& a, std::int64_t n,
               std::span<const std::int8_t> packed_b,
               std::span<const std::int32_t> b_col_sums,
               std::span<const float> bias, const Int8GemmQuant& q,
               std::span<std::int8_t> c, EpilogueAct act)
{
    EB_CHECK(a.values != nullptr && a.rowSums != nullptr,
             "gemmPackedInt8: unpacked A");
    EB_CHECK(a.k <= kGemmInt8MaxK,
             "gemmPackedInt8: k " << a.k << " exceeds int8 GEMM bound "
                                  << kGemmInt8MaxK);
    EB_CHECK(static_cast<std::int64_t>(packed_b.size()) >=
                 packedBI8ValueCount(n, a.k),
             "gemmPackedInt8: packed B too small");
    EB_CHECK(static_cast<std::int64_t>(b_col_sums.size()) >=
                 packedBI8SumCount(n),
             "gemmPackedInt8: column sums too small");
    EB_CHECK(bias.empty() ||
                 static_cast<std::int64_t>(bias.size()) == a.m,
             "gemmPackedInt8: bias size " << bias.size()
                                          << " does not match m "
                                          << a.m);
    EB_CHECK(static_cast<std::int64_t>(c.size()) == a.m * n,
             "gemmPackedInt8: bad C size");
    const std::int64_t m = a.m;
    const std::int64_t k = a.k;
    const std::int64_t mp = a.mPanels();
    const std::int64_t np = gemmInt8Tiles(n, NR);
    const double acc_scale = q.a.scale * q.b.scale;
    const RequantScale rs = makeRequantScale(acc_scale / q.out.scale);
    const std::int32_t a_zp = q.a.zeroPoint;
    const std::int64_t b_zp = q.b.zeroPoint;
    const std::int32_t out_zp = q.out.zeroPoint;
    // Fused activation: relu/relu6 in the quantized domain is a
    // tighter saturation clamp, applied while requantizing (see
    // int8ActBounds for the bit-identity argument).
    std::int32_t qlo = -128;
    std::int32_t qhi = 127;
    int8ActBounds(act, q.out, qlo, qhi);

    // Fold bias and the per-row zero-point terms once per call (the
    // packed weights stay activation-agnostic, so a cached packing
    // works for any input quantization).
    std::span<std::int64_t> row_corr = scratchI64(
        ScratchSlot::kInt8RowCorr, static_cast<std::size_t>(mp * MR));
    for (std::int64_t ip = 0; ip < mp; ++ip) {
        const std::int32_t* sums = a.panelRowSums(ip);
        for (std::int64_t i = 0; i < MR; ++i) {
            const std::int64_t row = ip * MR + i;
            const std::int64_t bias_q =
                (!bias.empty() && row < m)
                    ? quantizeBiasValue(bias[row], acc_scale)
                    : 0;
            row_corr[static_cast<std::size_t>(row)] = row < m
                ? rowCorrection(bias_q, sums[i], k, a_zp,
                                static_cast<std::int32_t>(b_zp))
                : 0;
        }
    }

    // Resolve the engine once, outside the parallel region.
    const bool use_simd = simdActive();
    // One task per C tile, B-panel-major (matches the fp32 engine).
    // Integer accumulation is exact, so any partition of whole tiles
    // is bit-identical; each tile is still accumulated k-ascending by
    // a single worker. The requantization epilogue (int64 multiply +
    // shift per element) stays scalar — it is O(m*n) against the
    // microkernel's O(m*n*k).
#if EDGEBENCH_SIMD_COMPILED
    if (use_simd) {
        parallelFor(
            np * mp,
            [&](std::int64_t t0, std::int64_t t1) {
                i32x8 vacc[MR];
                std::int32_t acc[MR * NR];
                for (std::int64_t t = t0; t < t1; ++t) {
                    const std::int64_t jp = t / mp;
                    const std::int64_t ip = t % mp;
                    const std::int8_t* apanel = a.panelValues(ip);
                    const std::int8_t* bpanel =
                        packed_b.data() + jp * k * NR;
                    for (std::int64_t i = 0; i < MR; ++i)
                        vacc[i] = splatI32x8(0);
                    microKernelInt8Simd(apanel, bpanel, k, vacc);
                    for (std::int64_t i = 0; i < MR; ++i)
                        storeI32x8(acc + i * NR, vacc[i]);
                    const std::int64_t i0 = ip * MR;
                    const std::int64_t j0 = jp * NR;
                    const std::int64_t ilim = std::min(MR, m - i0);
                    const std::int64_t jlim = std::min(NR, n - j0);
                    for (std::int64_t i = 0; i < ilim; ++i)
                        for (std::int64_t j = 0; j < jlim; ++j) {
                            const std::int64_t total =
                                static_cast<std::int64_t>(
                                    acc[i * NR + j]) +
                                row_corr[static_cast<std::size_t>(
                                    i0 + i)] -
                                static_cast<std::int64_t>(a_zp) *
                                    b_col_sums
                                        [static_cast<std::size_t>(
                                            j0 + j)];
                            c[(i0 + i) * n + j0 + j] =
                                requantizeFixedPoint(total, rs,
                                                     out_zp, qlo, qhi);
                        }
                }
            },
            /*min_grain=*/2);
        return;
    }
#else
    (void)use_simd;
#endif
    parallelFor(
        np * mp,
        [&](std::int64_t t0, std::int64_t t1) {
            std::int32_t acc[MR * NR];
            for (std::int64_t t = t0; t < t1; ++t) {
                const std::int64_t jp = t / mp;
                const std::int64_t ip = t % mp;
                const std::int8_t* apanel = a.panelValues(ip);
                const std::int8_t* bpanel =
                    packed_b.data() + jp * k * NR;
                std::fill(acc, acc + MR * NR, 0);
                microKernelInt8(apanel, bpanel, k, acc);
                const std::int64_t i0 = ip * MR;
                const std::int64_t j0 = jp * NR;
                const std::int64_t ilim = std::min(MR, m - i0);
                const std::int64_t jlim = std::min(NR, n - j0);
                for (std::int64_t i = 0; i < ilim; ++i)
                    for (std::int64_t j = 0; j < jlim; ++j) {
                        const std::int64_t total =
                            static_cast<std::int64_t>(
                                acc[i * NR + j]) +
                            row_corr[static_cast<std::size_t>(
                                i0 + i)] -
                            static_cast<std::int64_t>(a_zp) *
                                b_col_sums[static_cast<std::size_t>(
                                    j0 + j)];
                        c[(i0 + i) * n + j0 + j] =
                            requantizeFixedPoint(total, rs, out_zp,
                                                 qlo, qhi);
                    }
            }
        },
        /*min_grain=*/2);
}

void
gemvPackedInt8(const PackedAI8View& a, std::span<const std::int8_t> x,
               std::span<const float> bias, const Int8GemmQuant& q,
               std::span<std::int8_t> y)
{
    EB_CHECK(a.values != nullptr && a.rowSums != nullptr,
             "gemvPackedInt8: unpacked A");
    EB_CHECK(a.k <= kGemmInt8MaxK,
             "gemvPackedInt8: k " << a.k << " exceeds int8 GEMM bound "
                                  << kGemmInt8MaxK);
    EB_CHECK(static_cast<std::int64_t>(x.size()) == a.k,
             "gemvPackedInt8: bad x size");
    EB_CHECK(bias.empty() ||
                 static_cast<std::int64_t>(bias.size()) == a.m,
             "gemvPackedInt8: bias size " << bias.size()
                                          << " does not match m "
                                          << a.m);
    EB_CHECK(static_cast<std::int64_t>(y.size()) == a.m,
             "gemvPackedInt8: bad y size");
    const std::int64_t m = a.m;
    const std::int64_t k = a.k;
    const double acc_scale = q.a.scale * q.b.scale;
    const RequantScale rs = makeRequantScale(acc_scale / q.out.scale);
    const std::int32_t a_zp = q.a.zeroPoint;
    const std::int32_t b_zp = q.b.zeroPoint;
    const std::int32_t out_zp = q.out.zeroPoint;

    std::int64_t xsum = 0;
    for (std::int64_t p = 0; p < k; ++p)
        xsum += x[p];
    const std::int64_t col_corr =
        static_cast<std::int64_t>(a_zp) * xsum;

    parallelFor(
        a.mPanels(),
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t ip = p0; ip < p1; ++ip) {
                const std::int8_t* vals = a.panelValues(ip);
                const std::int32_t* sums = a.panelRowSums(ip);
                const std::int64_t i0 = ip * MR;
                const std::int64_t ilim = std::min(MR, m - i0);
                std::int32_t acc[MR] = {0, 0, 0, 0, 0, 0};
                for (std::int64_t p = 0; p < k; ++p) {
                    const std::int32_t xv = x[p];
                    const std::int8_t* av = vals + p * MR;
                    for (std::int64_t i = 0; i < MR; ++i)
                        acc[i] += av[i] * xv;
                }
                for (std::int64_t i = 0; i < ilim; ++i) {
                    const std::int64_t bias_q = bias.empty()
                        ? 0
                        : quantizeBiasValue(bias[i0 + i], acc_scale);
                    const std::int64_t total =
                        static_cast<std::int64_t>(acc[i]) +
                        rowCorrection(bias_q, sums[i], k, a_zp,
                                      b_zp) -
                        col_corr;
                    y[i0 + i] = requantizeFixedPoint(total, rs,
                                                     out_zp);
                }
            }
        },
        /*min_grain=*/2);
}

} // namespace core
} // namespace edgebench
