#include "edgebench/core/simd.hh"

#include <cstdlib>
#include <string>

namespace edgebench
{
namespace core
{

namespace
{

#if EDGEBENCH_SIMD_COMPILED

bool
initialSimdActive()
{
    const char* env = std::getenv("EDGEBENCH_SIMD");
    if (env != nullptr) {
        const std::string v(env);
        if (v == "off" || v == "OFF" || v == "0" || v == "false")
            return false;
    }
    return true;
}

bool&
simdFlag()
{
    static bool active = initialSimdActive();
    return active;
}

#endif // EDGEBENCH_SIMD_COMPILED

} // namespace

bool
simdActive()
{
#if EDGEBENCH_SIMD_COMPILED
    return simdFlag();
#else
    return false;
#endif
}

bool
setSimdActive(bool on)
{
#if EDGEBENCH_SIMD_COMPILED
    simdFlag() = on;
    return on;
#else
    (void)on;
    return false;
#endif
}

int
simdLaneWidth()
{
    return simdActive() ? kSimdLanes : 1;
}

} // namespace core
} // namespace edgebench
