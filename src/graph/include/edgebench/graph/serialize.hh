/**
 * @file
 * Text serialization of computation graphs.
 *
 * The format ("EBG v1") captures everything a deferred graph holds —
 * topology, op attributes, precision annotations, parameter shapes,
 * sparsity — so a round trip preserves cost-model behaviour exactly.
 * Materialized weights are intentionally not serialized (the repo's
 * weights are always reproducible from a seed); saving a materialized
 * graph stores its deferred skeleton.
 *
 * The format is line-oriented and diff-friendly:
 *
 *   EBG v1
 *   name <model name>
 *   input_desc <desc>
 *   node <id> <kind> dtype=<d> shape=[..] in=[..] name=<...>
 *     attr <key> <value...>
 *     param [shape]
 *   inputs [ids]
 *   outputs [ids]
 */

#ifndef EDGEBENCH_GRAPH_SERIALIZE_HH
#define EDGEBENCH_GRAPH_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace graph
{

/** Write @p g in EBG v1 text form. */
void writeGraphText(const Graph& g, std::ostream& os);

/** Parse an EBG v1 stream; throws InvalidArgumentError on bad input. */
Graph readGraphText(std::istream& is);

/** Convenience: serialize to / parse from a string. */
std::string graphToString(const Graph& g);
Graph graphFromString(const std::string& text);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_SERIALIZE_HH
