/**
 * @file
 * Static model-graph verifier: a pass framework that proves, before a
 * single interpreter step runs, that a graph will execute exactly what
 * it declares.
 *
 * The paper's characterization (and every number this repo reproduces)
 * rests on the deployed graph being the declared graph: a mis-shaped
 * edge, a zero quantization scale or an aliasing arena slot corrupts
 * latency/energy/accuracy results silently. EmBench and DeepEdgeBench
 * both stress that cross-device comparisons are only meaningful over
 * validated deployments, so the verifier runs at Interpreter
 * construction by default (EDGEBENCH_VERIFY=off disables) and is also
 * exposed as `edgebench verify <model>`.
 *
 * Built-in passes (each independently toggleable):
 *  - "shapes":    full shape/dtype re-inference from op semantics
 *                 (conv/dense/RNN/elementwise/concat/pad/upsample
 *                 geometry) checked against every declared tensor
 *                 shape and parameter-shape contract;
 *  - "quant":     quantization sanity — scales positive and finite,
 *                 zero points in int8 range, the strict fp32 {outC}
 *                 bias contract of the integer kernels, fixed-point
 *                 requantization multiplier representability and the
 *                 packed int8 GEMM depth limit;
 *  - "wellformed": graph well-formedness — dangling/duplicate edges,
 *                 append-order ids, unreachable nodes, dead tensors,
 *                 input/output registration;
 *  - "memplan":   static replay of the MemoryPlan — no two
 *                 time-overlapping blocks may alias arena bytes, all
 *                 placements aligned and inside the arena, arena no
 *                 larger than the refcount-peak bound (independent of
 *                 the planner's own bookkeeping);
 *  - "parallel":  parallel-write-hazard audit — each kernel's output
 *                 partitioning must cover the declared output buffer
 *                 with pairwise-disjoint element ranges at any worker
 *                 count (the PR-3 determinism invariant);
 *  - "inplace":   legality of every in-place reuse the planner chose
 *                 (single consumer, matching bytes, whitelisted op,
 *                 never recurrent).
 *
 * Diagnostics are structured (severity, node, message, fix hint) so
 * callers can render tables, JSON, or throw on errors.
 */

#ifndef EDGEBENCH_GRAPH_VERIFY_HH
#define EDGEBENCH_GRAPH_VERIFY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "edgebench/graph/graph.hh"
#include "edgebench/graph/memplan.hh"

namespace edgebench
{
namespace graph
{

/** Severity of one diagnostic. Errors make a graph non-runnable. */
enum class Severity
{
    kInfo,
    kWarning,
    kError,
};

/** @return stable lowercase mnemonic, e.g. "error". */
std::string severityName(Severity s);

/** One structured finding from a verifier pass. */
struct Diagnostic
{
    Severity severity = Severity::kError;
    /** Name of the pass that produced the finding, e.g. "shapes". */
    std::string pass;
    /** Offending node (-1 for graph-level findings). */
    NodeId node = -1;
    /** Diagnostic id of the node ("node 5 (conv2d 'c1')"); empty for
        graph-level findings. */
    std::string nodeName;
    /** What is wrong. */
    std::string message;
    /** How to fix it (may be empty). */
    std::string hint;

    /** "error[shapes] node 5 (conv2d 'c1'): ... (hint: ...)". */
    std::string format() const;
};

/** The outcome of a verifier run over one graph. */
struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;

    std::int64_t count(Severity s) const;
    std::int64_t errors() const { return count(Severity::kError); }
    std::int64_t warnings() const { return count(Severity::kWarning); }
    /** True when no error-severity diagnostics were produced. */
    bool ok() const { return errors() == 0; }
    /** "3 errors, 1 warning, 0 info" */
    std::string summary() const;
};

/** Static metadata of one registered pass. */
struct PassInfo
{
    std::string name;
    std::string description;
};

/**
 * Append-only sink the passes emit into; binds the pass name and
 * formats the node's diagnostic id once per finding.
 */
class DiagnosticSink
{
  public:
    DiagnosticSink(std::string pass, VerifyReport& report)
        : pass_(std::move(pass)), report_(report)
    {}

    void error(const Node* n, std::string msg, std::string hint = "")
    {
        emit(Severity::kError, n, std::move(msg), std::move(hint));
    }
    void warn(const Node* n, std::string msg, std::string hint = "")
    {
        emit(Severity::kWarning, n, std::move(msg), std::move(hint));
    }
    void info(const Node* n, std::string msg, std::string hint = "")
    {
        emit(Severity::kInfo, n, std::move(msg), std::move(hint));
    }

  private:
    void emit(Severity sev, const Node* n, std::string msg,
              std::string hint);

    std::string pass_;
    VerifyReport& report_;
};

/**
 * The pass registry. Constructing a Verifier registers every built-in
 * pass enabled; individual passes can be switched off by name before
 * run(). The verifier never mutates the graph.
 */
class Verifier
{
  public:
    Verifier();

    /** Metadata of all built-in passes, in execution order. */
    static const std::vector<PassInfo>& passes();

    /** Toggle one pass by name; throws on an unknown name. */
    void setEnabled(const std::string& pass, bool on);
    bool enabled(const std::string& pass) const;

    /** Run every enabled pass over @p g and collect diagnostics. */
    VerifyReport run(const Graph& g) const;

  private:
    std::vector<bool> enabled_;
};

/** Run all built-in passes over @p g. */
VerifyReport verifyGraph(const Graph& g);

/**
 * Run all passes and throw InvalidArgumentError listing every
 * error-severity diagnostic (warnings/info are ignored). @p context
 * names the caller, e.g. "Interpreter". No-op on a clean graph.
 */
void verifyOrThrow(const Graph& g, const std::string& context);

/**
 * EDGEBENCH_VERIFY environment toggle for compile-time verification:
 * default on; "0"/"off"/"false" disables.
 */
bool verifyEnvEnabled();

/**
 * @name Standalone plan audits
 * The "memplan" and "inplace" passes delegate to these; they take the
 * plan as an argument so tests can audit deliberately corrupted plans
 * (the registered passes audit planMemory(g, force_f32) directly).
 */
/// @{

/**
 * Statically replay @p plan's lifetimes against @p g: every root block
 * must be aligned, inside the arena, and disjoint from every other
 * root block whose [defStep, endStep] interval overlaps its own;
 * chain members must inherit their root's placement, and the arena
 * must stay within the refcount-peak bound (plus alignment slack).
 */
void auditMemoryPlan(const Graph& g, const MemoryPlan& plan,
                     bool force_f32, VerifyReport& report);

/**
 * Prove every in-place reuse in @p plan legal: the donor is a direct
 * input with exactly one consumer, not a graph output, of identical
 * physical size and element type, the op is on the in-place
 * whitelist, and recurrent ops never donate or reuse.
 */
void auditInplaceReuse(const Graph& g, const MemoryPlan& plan,
                       bool force_f32, VerifyReport& report);

/// @}

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_VERIFY_HH
