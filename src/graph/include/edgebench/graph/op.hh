/**
 * @file
 * Operator vocabulary of the computation-graph IR.
 *
 * The set covers every layer used by the paper's sixteen CNN models
 * (Table I): 2D/3D convolutions (grouped/depthwise/dilated), dense
 * layers, batch normalization, the ReLU activation family, pooling,
 * residual adds, inception concats, YOLO/SSD detection heads, and the
 * fused conv+BN+activation node produced by the fusion pass.
 */

#ifndef EDGEBENCH_GRAPH_OP_HH
#define EDGEBENCH_GRAPH_OP_HH

#include <string>

namespace edgebench
{
namespace graph
{

/** Operator kinds. */
enum class OpKind
{
    kInput,
    kConv2d,
    kConv3d,
    kDense,
    kBatchNorm,
    kActivation,
    kSoftmax,
    kMaxPool2d,
    kAvgPool2d,
    kMaxPool3d,
    kGlobalAvgPool,
    kAdd,
    kConcat,
    kFlatten,
    kReshape,
    /** Concatenation along the last dimension (rank >= 2). */
    kConcatLast,
    kPadSpatial,
    kUpsample,
    kFusedConvBnAct,
    /** LSTM layer over a sequence (paper future work: RNNs). */
    kLstm,
    /** GRU layer over a sequence. */
    kGru,
    /** Select one timestep of a [N, T, F] sequence. */
    kSelectTimestep,
    /** ShuffleNet channel shuffle: interleave grouped channels. */
    kChannelShuffle,
    /** SSD-style box decoding + non-maximum suppression. */
    kDetectPostprocess,
    /** YOLO region head: sigmoid/exp decode of raw predictions. */
    kYoloDetect,
};

/** Activation functions attachable to kActivation / fused nodes. */
enum class ActKind
{
    kNone,
    kRelu,
    kRelu6,
    kLeakyRelu,
    kSigmoid,
    kTanh,
};

/** @return stable lowercase mnemonic, e.g. "conv2d". */
std::string opKindName(OpKind kind);

/** @return stable lowercase mnemonic, e.g. "relu6". */
std::string actKindName(ActKind kind);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_OP_HH
