/**
 * @file
 * Human-readable graph exports: a Keras-style layer summary and a
 * Graphviz dot rendering.
 */

#ifndef EDGEBENCH_GRAPH_EXPORT_HH
#define EDGEBENCH_GRAPH_EXPORT_HH

#include <iosfwd>

#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace graph
{

/**
 * Print a layer table: id, name, kind, output shape, precision,
 * parameter count and MACs, followed by graph totals.
 */
void printSummary(const Graph& g, std::ostream& os);

/**
 * Emit the graph in Graphviz dot syntax. Node labels carry the op
 * kind and output shape; graph inputs/outputs are highlighted.
 */
void writeDot(const Graph& g, std::ostream& os);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_EXPORT_HH
