/**
 * @file
 * Graph optimization passes.
 *
 * These implement, for real, the optimizations the paper attributes to
 * the frameworks in Table II:
 *  - kernel fusion (conv+BN+activation) — TFLite, Movidius, TensorRT;
 *  - post-training INT8 quantization with calibration — TFLite,
 *    TensorRT, EdgeTPU deployment requirement;
 *  - FP16 (half-precision) conversion — nearly all frameworks;
 *  - magnitude pruning with sparsity annotations — TF/TFLite/TensorRT
 *    exploit them, others only shrink storage;
 *  - dead-node elimination ("freezing" a graph, TFLite deployment).
 *
 * Every pass is semantics-preserving up to the precision change, and
 * the test suite verifies that property with the interpreter.
 */

#ifndef EDGEBENCH_GRAPH_PASSES_HH
#define EDGEBENCH_GRAPH_PASSES_HH

#include <vector>

#include "edgebench/core/tensor.hh"
#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace graph
{

/** Outcome of a rewriting pass, with a rewrite count for reporting. */
struct PassResult
{
    Graph graph;
    std::int64_t rewrites = 0;
};

/**
 * Fuse conv2d -> batch_norm [-> activation] chains (and conv2d ->
 * activation chains) into single kFusedConvBnAct nodes. When the graph
 * is materialized, batch-norm parameters are folded into the conv
 * weights/bias analytically.
 */
PassResult fuseConvBnAct(const Graph& g);

/**
 * Post-training INT8 quantization. For a materialized graph, runs a
 * calibration pass over @p calibration_inputs to derive per-node
 * activation ranges, quantizes weights symmetrically, and annotates
 * each supported node with kI8 + QuantParams. Deferred graphs receive
 * dtype annotations only (sufficient for the cost model).
 *
 * Ops without quantized support (softmax, detection heads, conv3d)
 * stay fp32, mirroring TFLite's partial-delegation behaviour.
 */
PassResult quantizeInt8(
    const Graph& g,
    const std::vector<core::Tensor>* calibration_inputs = nullptr);

/** @return true when @p kind is quantizable to INT8 by quantizeInt8. */
bool isInt8Quantizable(OpKind kind, const Node& node);

/** Convert all nodes (and materialized weights) to emulated FP16. */
PassResult convertToF16(const Graph& g);

/**
 * Magnitude-prune conv/dense weights to @p fraction sparsity; sets the
 * weightSparsity annotation consumed by sparsity-aware cost models.
 */
PassResult pruneWeights(const Graph& g, double fraction);

/** Remove nodes that no marked output depends on (graph freezing). */
PassResult eliminateDeadNodes(const Graph& g);

/**
 * Rewrite the graph for batch size @p batch (paper Section VI-C:
 * multi-batch inferencing is the cloud practice that single-batch
 * edge serving cannot use). Only valid on deferred graphs; parameters
 * are batch-independent so shapes/geometries are scaled in place.
 */
PassResult rebatch(const Graph& g, std::int64_t batch);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_PASSES_HH
