/**
 * @file
 * Static activation-memory planner.
 *
 * Computes, entirely ahead of execution, where every activation tensor
 * of a graph lives inside one contiguous arena — the planning scheme
 * TFLite's greedy-by-size arena planner uses, and the reason a static
 * runtime's resident footprint is far below "sum of all activations"
 * (the paper's Section IV memory characterization hinges on exactly
 * this gap).
 *
 * The plan is a pure function of the graph and the dtype mode, so it
 * works on deferred (parameter-free) graphs, is computed once per
 * (graph, mode) and cached by the interpreter next to its
 * packed-weight caches.
 *
 * Lifetime rules:
 *  - a node's block is born at its execution step and stays live until
 *    its last consumer's step (append order is the execution order);
 *  - graph outputs stay live to the final step (they escape the run);
 *  - nodes with no consumers that are not outputs die at their own
 *    step (the legacy refcount path never frees them — that is an
 *    accounting artifact, not a storage need — and refcountPeakBytes
 *    reproduces that artifact exactly);
 *  - recurrent ops (LSTM/GRU) never share storage with their input:
 *    they re-read the full input sequence while committing output
 *    timesteps, so their blocks must be disjoint (the deferred-commit
 *    constraint). They are simply excluded from the in-place
 *    whitelist; ordinary producer/consumer blocks overlap at the
 *    consumer's step and are therefore always disjoint too.
 *
 * In-place sharing: single-consumer elementwise ops (activations,
 * batch norm, residual add in fp32; relu/relu6 in int8) reuse their
 * producer's block instead of opening a new one. Chains
 * (conv -> bn -> relu) collapse onto the conv's block, whose lifetime
 * extends to the end of the chain.
 */

#ifndef EDGEBENCH_GRAPH_MEMPLAN_HH
#define EDGEBENCH_GRAPH_MEMPLAN_HH

#include <cstdint>
#include <vector>

#include "edgebench/core/types.hh"
#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace graph
{

/** Arena block alignment (cache line; also safe for float access). */
inline constexpr std::int64_t kArenaAlign = 64;

/**
 * The element type a node's activation actually has at run time:
 * quantized nodes (dtype kI8 with calibrated QuantParams) produce
 * int8, declared-fp16 nodes produce (emulated) fp16, and everything
 * else — including kBin1 annotations, which have no runtime kernel —
 * produces fp32. force_f32 (the calibration mode) makes every node
 * fp32.
 */
core::DType runtimeDType(const Node& n, bool force_f32);

/** One node's placement inside the plan. */
struct MemSlot
{
    /** Byte offset of this node's block in the arena (root's block). */
    std::int64_t offset = 0;
    /**
     * Stored bytes of the activation: numel for int8, 4*numel
     * otherwise (fp16 is emulated in fp32 storage).
     */
    std::int64_t physicalBytes = 0;
    /**
     * Accounting bytes at the node's runtime dtype (fp16 counts 2
     * bytes/element) — the quantity live-byte tracking sums.
     */
    std::int64_t logicalBytes = 0;
    /** Block owner: the node id whose block this slot lives in. */
    NodeId root = -1;
    /** Direct producer whose storage is mutated in place (-1: none). */
    NodeId inplaceSrc = -1;
    /** True when the slot stores int8 elements. */
    bool i8 = false;
    /** Execution step the value is defined at (== node id). */
    std::int32_t defStep = 0;
    /** Last step the block is read at (roots: max over the chain). */
    std::int32_t endStep = 0;
};

/** A complete static memory plan for one (graph, dtype-mode). */
struct MemoryPlan
{
    /** Per-node placements, indexed by NodeId. */
    std::vector<MemSlot> slots;
    /** Total arena bytes the plan needs. */
    std::int64_t arenaBytes = 0;
    /** Sum of every activation's logical bytes (naive allocator). */
    std::int64_t sumAllocBytes = 0;
    /**
     * Peak bytes of simultaneously live *blocks* (physical, timeline
     * sweep) — the lower bound the arena placement tries to reach.
     */
    std::int64_t peakLiveBytes = 0;
    /**
     * Peak live bytes under the legacy refcount executor's lifetime
     * rules (logical bytes) — equals RunStats::peakActivationBytes of
     * a legacy-path run exactly, giving the differential tests an
     * analytic oracle.
     */
    std::int64_t refcountPeakBytes = 0;
};

/**
 * Plan activation memory for @p g executed in the given dtype mode
 * (@p force_f32 mirrors Interpreter::calibrate). Works on deferred
 * graphs; cost is O(blocks^2) in time, trivial next to one inference.
 */
MemoryPlan planMemory(const Graph& g, bool force_f32);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_MEMPLAN_HH
