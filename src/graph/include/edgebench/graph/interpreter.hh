/**
 * @file
 * Functional executor for computation graphs.
 *
 * The interpreter actually runs a graph on core::Tensor values. It is
 * the semantic oracle of edgebench-sim: optimization passes (fusion,
 * quantization, fp16) are validated by comparing interpreter outputs
 * before and after the pass. It also tracks live activation memory,
 * which backs the paper's static-vs-dynamic-graph footprint analysis.
 *
 * Nodes annotated kI8 with calibrated QuantParams execute on the real
 * INT8 kernels (conv/dense/relu/add); other ops on int8 tensors fall
 * back to dequantize -> fp32 compute -> requantize, matching TFLite's
 * reference behaviour for ops without quantized implementations.
 */

#ifndef EDGEBENCH_GRAPH_INTERPRETER_HH
#define EDGEBENCH_GRAPH_INTERPRETER_HH

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/kernels_rnn.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/graph/graph.hh"
#include "edgebench/graph/memplan.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace graph
{

/** Execution metrics of one interpreter run. */
struct RunStats
{
    /**
     * Peak bytes of simultaneously live activation tensors under
     * refcount lifetime accounting. Integer so that summing exact
     * byte sizes never loses low bits to float rounding; identical
     * between the planner and legacy execution paths by construction.
     */
    std::int64_t peakActivationBytes = 0;
    /** Arena bytes backing the run (0 on the legacy path). */
    std::int64_t arenaBytes = 0;
    /** True when the run executed into planned arena slots. */
    bool usedMemoryPlan = false;
    std::int64_t nodesExecuted = 0;
};

class Interpreter
{
  public:
    /** @p graph must outlive the interpreter and be materialized. */
    explicit Interpreter(const Graph& graph);

    /**
     * Execute the graph on @p inputs (one tensor per graph input, in
     * declaration order). Returns one tensor per marked output.
     */
    std::vector<core::Tensor> run(
        const std::vector<core::Tensor>& inputs);

    /** Metrics of the most recent run(). */
    const RunStats& lastStats() const { return stats_; }

    /**
     * Emit one span per executed node into @p tracer on subsequent
     * runs (null disables). Spans carry op kind, FLOPs and bytes;
     * their *durations* come from @p per_node_ms (indexed by NodeId,
     * e.g. hw::perNodeTotalMs of the compiled plan) because the
     * interpreter itself is the functional half of the
     * functional/timing split and models no time. Without
     * @p per_node_ms spans are zero-length markers in execution
     * order.
     */
    void setTracer(obs::Tracer* tracer,
                   const std::vector<double>* per_node_ms = nullptr);

    /**
     * Calibration pass: run in pure fp32 and record the (min, max)
     * activation range of every node. Feeds the INT8 quantization
     * pass (TFLite-style post-training calibration).
     */
    std::vector<std::pair<double, double>> calibrate(
        const std::vector<core::Tensor>& inputs);

    /**
     * @name Static memory-plan execution
     * By default runs execute into arena slots assigned by the static
     * planner (memplan.hh); set EDGEBENCH_MEMPLAN=off (or 0/false) in
     * the environment, or call setUseMemoryPlan(false), to fall back
     * to the legacy refcount allocate/release path. Both paths are
     * bit-identical — the toggle exists for differential testing and
     * for measuring the allocation-churn win.
     */
    /// @{
    void setUseMemoryPlan(bool on) { useMemPlan_ = on; }
    bool usingMemoryPlan() const { return useMemPlan_; }
    /** The cached plan for the given mode (computed on first use). */
    const MemoryPlan& memoryPlan(bool force_f32 = false);
    /// @}

  private:
    core::Tensor execNode(const Node& n,
                          const std::vector<const core::Tensor*>& ins,
                          bool force_f32);
    core::Tensor execNodeF32(
        const Node& n, const std::vector<const core::Tensor*>& ins);
    /**
     * Execute a planner-whitelisted elementwise node by mutating
     * @p t (the moved-out value of input @p src_idx) in place.
     */
    void execNodeInPlace(const Node& n, core::Tensor& t,
                         const std::vector<const core::Tensor*>& ins,
                         std::size_t src_idx);
    std::vector<core::Tensor> runImpl(
        const std::vector<core::Tensor>& inputs, bool force_f32,
        std::vector<std::pair<double, double>>* ranges);

    /**
     * n.params[k] as fp32. Materialized params never change after
     * construction, so the converted copy is cached across runs;
     * params already in fp32 are returned by reference with no copy
     * at all. (The old code called toF32() per node per run, which
     * re-allocated every parameter tensor on every inference.)
     */
    const core::Tensor& paramF32(const Node& n, std::size_t k);

    /** Same for int8 weight access on the quantized paths. */
    const core::Tensor& paramI8(const Node& n, std::size_t k);

    /**
     * @name Pre-packed weight caches
     * GEMM-backed ops (conv2d, dense, LSTM/GRU) consume pre-packed A
     * panels (gemm_packed.hh). Packing is one-time work: built lazily
     * on a node's first execution — next to the converted-parameter
     * cache above — and reused on every subsequent run, so
     * steady-state inference performs zero packing. Quantized nodes
     * get their own int8 panel caches (gemm_packed_int8.hh); int8
     * packings are activation-agnostic (zero-point corrections fold
     * at call time), so one packing serves every run.
     */
    /// @{
    const core::PackedConvWeights& packedConv(const Node& n);
    const core::PackedA& packedDense(const Node& n);
    const core::PackedRnnWeights& packedRnn(const Node& n);
    const core::PackedConvWeightsI8& packedConvI8(const Node& n);
    const core::PackedAI8& packedDenseI8(const Node& n);
    /// @}

    const Graph& graph_;
    RunStats stats_;
    obs::Tracer* tracer_ = nullptr;
    std::vector<double> nodeMs_;
    /** Planner toggle (EDGEBENCH_MEMPLAN env, default on). */
    bool useMemPlan_ = true;
    /** Cached plans per dtype mode, next to the weight caches. */
    std::optional<MemoryPlan> planNative_;
    std::optional<MemoryPlan> planF32_;
    /** Arena slab (float-typed so fp32 slots are naturally aligned;
        int8 slots view the same bytes). */
    std::vector<float> arenaStore_;
    /** Per-node converted-parameter caches, indexed [NodeId][k]. */
    std::vector<std::vector<std::optional<core::Tensor>>> paramF32_;
    std::vector<std::vector<std::optional<core::Tensor>>> paramI8_;
    /** Per-node packed-weight caches, indexed [NodeId]. */
    std::vector<std::optional<core::PackedConvWeights>> packedConv_;
    std::vector<std::optional<core::PackedA>> packedDense_;
    std::vector<std::optional<core::PackedRnnWeights>> packedRnn_;
    std::vector<std::optional<core::PackedConvWeightsI8>> packedConvI8_;
    std::vector<std::optional<core::PackedAI8>> packedDenseI8_;
};

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_INTERPRETER_HH
