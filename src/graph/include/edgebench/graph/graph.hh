/**
 * @file
 * Computation-graph IR.
 *
 * A Graph is an append-only DAG of Nodes (append order is a topological
 * order). Construction performs shape inference eagerly, so invalid
 * model definitions fail at build time with a precise message.
 *
 * Parameters are *deferred by default*: nodes record parameter shapes
 * (enough for the cost model used by the device simulator) and actual
 * weight tensors are only allocated by materializeParams(). This keeps
 * graph-zoo construction cheap — ResNet-101 metadata is a few KB while
 * its weights would be 178 MB.
 */

#ifndef EDGEBENCH_GRAPH_GRAPH_HH
#define EDGEBENCH_GRAPH_GRAPH_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "edgebench/core/geometry.hh"
#include "edgebench/core/quant.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/core/types.hh"
#include "edgebench/graph/op.hh"

namespace edgebench
{
namespace graph
{

using NodeId = std::int32_t;

/** Per-node attribute bundle; only the fields for the kind are used. */
struct OpAttrs
{
    core::Conv2dGeom conv2d;
    core::Conv3dGeom conv3d;
    core::Pool2dGeom pool2d;
    core::Pool3dGeom pool3d;
    core::DenseGeom dense;
    core::RnnGeom rnn;
    double bnEpsilon = 1e-5;
    float leakySlope = 0.1f;
    std::int64_t upsampleFactor = 2;
    std::int64_t timestep = 0;
    std::int64_t pads[4] = {0, 0, 0, 0}; // top, bottom, left, right
    ActKind activation = ActKind::kNone;
    /** Detection-head attributes. */
    std::int64_t numClasses = 0;
    std::int64_t numAnchors = 0;
    double scoreThreshold = 0.25;
    double iouThreshold = 0.5;
};

/** One operator instance. */
struct Node
{
    NodeId id = -1;
    OpKind kind = OpKind::kInput;
    std::string name;
    std::vector<NodeId> inputs;
    OpAttrs attrs;
    core::Shape outShape;
    /** Compute/storage precision of this node. */
    core::DType dtype = core::DType::kF32;
    /** Shapes of parameters (conv: W[,b]; bn: gamma,beta,mean,var). */
    std::vector<core::Shape> paramShapes;
    /** Materialized parameters; empty until materializeParams(). */
    std::vector<core::Tensor> params;
    /** Fraction of weights pruned to zero (cost-model annotation). */
    double weightSparsity = 0.0;
    /** Activation quant params (set by the INT8 calibration pass). */
    std::optional<core::QuantParams> outQuant;

    /** Multiply-accumulates per inference (paper FLOP convention). */
    std::int64_t macs() const;
    /** Parameter element count. */
    std::int64_t paramElems() const;
    /** Parameter bytes at the node precision. */
    double paramBytes() const;
    /** Output activation element count. */
    std::int64_t outputElems() const;
    /** Output activation bytes at the node precision. */
    double outputBytes() const;
};

/** Aggregate statistics for one graph (drives Table I / Fig. 1). */
struct GraphStats
{
    std::int64_t macs = 0;
    std::int64_t params = 0;
    double paramBytes = 0.0;
    double activationBytes = 0.0;
    /** FLOP per parameter, the paper's compute-intensity metric. */
    double flopPerParam = 0.0;
    std::int64_t numNodes = 0;
};

class Graph
{
  public:
    Graph() = default;
    explicit Graph(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Human-readable input description, e.g. "224x224". */
    const std::string& inputDescription() const { return inputDesc_; }
    void setInputDescription(std::string d) { inputDesc_ = std::move(d); }

    /** @name Builder methods (all perform shape inference) */
    /// @{
    NodeId addInput(core::Shape shape, const std::string& name = "input");

    /**
     * 2D convolution. Stride/pad/dilation/groups come from @p geom's
     * corresponding fields; its input dims are inferred from @p input.
     */
    NodeId addConv2d(NodeId input, std::int64_t out_c, std::int64_t k_h,
                     std::int64_t k_w, std::int64_t stride = 1,
                     std::int64_t pad = 0, std::int64_t dilation = 1,
                     std::int64_t groups = 1, bool bias = true,
                     const std::string& name = "");

    /**
     * Rectangular-kernel convolution with independent H/W stride and
     * padding (Inception 1x7 / 7x1 factorized convolutions).
     */
    NodeId addConv2dRect(NodeId input, std::int64_t out_c,
                         std::int64_t k_h, std::int64_t k_w,
                         std::int64_t stride_h, std::int64_t stride_w,
                         std::int64_t pad_h, std::int64_t pad_w,
                         bool bias = true, const std::string& name = "");

    NodeId addConv3d(NodeId input, std::int64_t out_c, std::int64_t k_d,
                     std::int64_t k_h, std::int64_t k_w,
                     std::int64_t stride_d = 1, std::int64_t stride_hw = 1,
                     std::int64_t pad_d = 0, std::int64_t pad_hw = 0,
                     bool bias = true, const std::string& name = "");

    NodeId addDense(NodeId input, std::int64_t out_features,
                    bool bias = true, const std::string& name = "");

    NodeId addBatchNorm(NodeId input, double epsilon = 1e-5,
                        const std::string& name = "");

    /** LSTM over a [N, T, I] sequence; output is [N, T, hidden]. */
    NodeId addLstm(NodeId input, std::int64_t hidden,
                   const std::string& name = "");

    /** GRU over a [N, T, I] sequence; output is [N, T, hidden]. */
    NodeId addGru(NodeId input, std::int64_t hidden,
                  const std::string& name = "");

    /** Select one timestep of a [N, T, F] sequence -> [N, F]. */
    NodeId addSelectTimestep(NodeId input, std::int64_t t,
                             const std::string& name = "");

    /** ShuffleNet channel shuffle over @p groups channel groups. */
    NodeId addChannelShuffle(NodeId input, std::int64_t groups,
                             const std::string& name = "");

    NodeId addActivation(NodeId input, ActKind act,
                         const std::string& name = "");

    NodeId addSoftmax(NodeId input, const std::string& name = "");

    NodeId addMaxPool2d(NodeId input, std::int64_t k, std::int64_t stride,
                        std::int64_t pad = 0, bool ceil_mode = false,
                        const std::string& name = "");

    NodeId addAvgPool2d(NodeId input, std::int64_t k, std::int64_t stride,
                        std::int64_t pad = 0, bool ceil_mode = false,
                        const std::string& name = "");

    NodeId addMaxPool3d(NodeId input, std::int64_t k_d, std::int64_t k_hw,
                        std::int64_t stride_d, std::int64_t stride_hw,
                        std::int64_t pad_d = 0, std::int64_t pad_hw = 0,
                        const std::string& name = "");

    NodeId addGlobalAvgPool(NodeId input, const std::string& name = "");

    NodeId addAdd(NodeId a, NodeId b, const std::string& name = "");

    NodeId addConcat(const std::vector<NodeId>& inputs,
                     const std::string& name = "");

    NodeId addFlatten(NodeId input, const std::string& name = "");

    /** Zero-cost reshape; numel must be preserved. */
    NodeId addReshape(NodeId input, core::Shape shape,
                      const std::string& name = "");

    /** Concatenate along the last dimension (all other dims equal). */
    NodeId addConcatLast(const std::vector<NodeId>& inputs,
                         const std::string& name = "");

    NodeId addPadSpatial(NodeId input, std::int64_t top,
                         std::int64_t bottom, std::int64_t left,
                         std::int64_t right,
                         const std::string& name = "");

    NodeId addUpsample(NodeId input, std::int64_t factor,
                       const std::string& name = "");

    /**
     * SSD-style detection post-processing. @p input must be a
     * [N, boxes, 4 + numClasses] tensor (box regressions followed by
     * class scores). Output is [N, maxDetections, 6].
     */
    NodeId addDetectPostprocess(NodeId input, std::int64_t num_classes,
                                double score_threshold = 0.25,
                                double iou_threshold = 0.5,
                                const std::string& name = "");

    /**
     * YOLO region head over a conv feature map laid out as
     * [N, anchors*(5+classes), H, W].
     */
    NodeId addYoloDetect(NodeId input, std::int64_t num_classes,
                         std::int64_t num_anchors,
                         const std::string& name = "");

    /** Mark a node as a graph output. */
    void markOutput(NodeId id);
    /// @}

    /** @name Low-level API for graph-rewriting passes */
    /// @{
    /**
     * Append a fully-formed node (inputs must reference existing
     * nodes; no shape inference is performed). Returns the new id.
     */
    NodeId appendRaw(Node n);
    /** Register an already-appended node as a graph input. */
    void markInput(NodeId id);
    /// @}

    /** @name Introspection */
    /// @{
    std::int64_t numNodes() const
    {
        return static_cast<std::int64_t>(nodes_.size());
    }
    const Node& node(NodeId id) const;
    Node& node(NodeId id);
    const std::vector<Node>& nodes() const { return nodes_; }
    std::vector<Node>& nodes() { return nodes_; }
    const std::vector<NodeId>& inputIds() const { return inputs_; }
    const std::vector<NodeId>& outputIds() const { return outputs_; }
    /** Number of consumers of each node (0 for pure outputs). */
    std::vector<std::int32_t> consumerCounts() const;
    /// @}

    /** Aggregate cost statistics. */
    GraphStats stats() const;

    /** True when any node carries materialized parameter tensors. */
    bool materialized() const { return materialized_; }

    /**
     * Allocate and initialize all parameters (He-style normal for
     * weights, zeros for biases, identity stats for batch norm).
     */
    void materializeParams(core::Rng& rng);

    /** Drop materialized parameters (back to deferred mode). */
    void dropParams();

  private:
    NodeId addNode(Node n);
    /** Fetch the shape of a producer node and validate the id. */
    const core::Shape& inShape(NodeId id, const char* what) const;

    std::string name_ = "graph";
    std::string inputDesc_;
    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
    bool materialized_ = false;
};

/**
 * Diagnostic id of a node: "node 5 (conv2d 'conv1')". One format
 * shared by every EB_CHECK inside interpreter/memplan and by the
 * verifier's diagnostics, so failures always name the node and op.
 */
std::string nodeDesc(const Node& n);

/**
 * Estimate the peak bytes of simultaneously-live activations for a
 * single-batch forward pass, by liveness analysis over the (possibly
 * deferred) graph. Matches Interpreter::RunStats::peakActivationBytes
 * for fp32 graphs.
 */
double estimatePeakActivationBytes(const Graph& g);

/**
 * Total memory footprint of deploying @p g: parameters plus peak
 * activations. This is the quantity compared against device memory
 * capacity (Table V memory-error analysis).
 */
double deploymentFootprintBytes(const Graph& g);

} // namespace graph
} // namespace edgebench

#endif // EDGEBENCH_GRAPH_GRAPH_HH
