#include "edgebench/graph/memplan.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace graph
{

namespace
{

std::int64_t
alignUp(std::int64_t bytes)
{
    return (bytes + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
}

std::int64_t
physicalBytesFor(const Node& n, core::DType rt)
{
    const std::int64_t numel = core::numElements(n.outShape);
    return rt == core::DType::kI8 ? numel : numel * 4;
}

std::int64_t
logicalBytesFor(const Node& n, core::DType rt)
{
    const std::int64_t numel = core::numElements(n.outShape);
    switch (rt) {
      case core::DType::kI8: return numel;
      case core::DType::kF16: return numel * 2;
      default: return numel * 4;
    }
}

bool
fusableActivation(ActKind a)
{
    return a == ActKind::kRelu || a == ActKind::kRelu6 ||
        a == ActKind::kLeakyRelu || a == ActKind::kSigmoid ||
        a == ActKind::kTanh;
}

} // namespace

core::DType
runtimeDType(const Node& n, bool force_f32)
{
    if (force_f32)
        return core::DType::kF32;
    if (n.dtype == core::DType::kI8 && n.outQuant.has_value())
        return core::DType::kI8;
    // Input values are fed as fp32 (quantized inputs handled above);
    // a kF16 annotation on an input node is a cost-model label only.
    if (n.kind == OpKind::kInput)
        return core::DType::kF32;
    if (n.dtype == core::DType::kF16)
        return core::DType::kF16;
    return core::DType::kF32;
}

MemoryPlan
planMemory(const Graph& g, bool force_f32)
{
    const auto& nodes = g.nodes();
    const std::size_t n_nodes = nodes.size();
    MemoryPlan plan;
    plan.slots.resize(n_nodes);
    if (n_nodes == 0)
        return plan;
    const auto last_step = static_cast<std::int32_t>(n_nodes - 1);

    std::vector<bool> is_output(n_nodes, false);
    for (NodeId id : g.outputIds())
        is_output[static_cast<std::size_t>(id)] = true;
    const std::vector<std::int32_t> consumers = g.consumerCounts();

    std::vector<core::DType> rt(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
        const Node& n = nodes[i];
        EB_CHECK(n.id == static_cast<NodeId>(i),
                 "planMemory: " << nodeDesc(n) << " at position " << i
                     << ": node ids must equal append order");
        rt[i] = runtimeDType(n, force_f32);
        MemSlot& s = plan.slots[i];
        s.physicalBytes = physicalBytesFor(n, rt[i]);
        s.logicalBytes = logicalBytesFor(n, rt[i]);
        s.i8 = rt[i] == core::DType::kI8;
        s.defStep = static_cast<std::int32_t>(i);
        s.endStep = s.defStep;
        s.root = n.id;
        plan.sumAllocBytes += s.logicalBytes;
    }

    // Lifetimes: last consumer step, outputs pinned to the final step.
    for (const Node& n : nodes)
        for (NodeId in : n.inputs) {
            MemSlot& s = plan.slots[static_cast<std::size_t>(in)];
            s.endStep =
                std::max(s.endStep, static_cast<std::int32_t>(n.id));
        }
    for (NodeId id : g.outputIds())
        plan.slots[static_cast<std::size_t>(id)].endStep = last_step;

    // In-place sharing: a single-consumer, non-output producer of the
    // same element type and size donates its block to an elementwise
    // consumer. Chains collapse onto the chain head's block.
    for (const Node& n : nodes) {
        if (n.kind == OpKind::kInput)
            continue;
        const auto idx = static_cast<std::size_t>(n.id);
        std::size_t src_choice = 0;
        bool fusable = false;
        if (rt[idx] == core::DType::kF32) {
            // All operands must execute as fp32 so the in-place kernel
            // sees exactly the bytes the allocating path would read
            // (f16/i8 operands go through a converted copy instead).
            bool all_f32 = true;
            for (NodeId in : n.inputs)
                all_f32 = all_f32 &&
                    rt[static_cast<std::size_t>(in)] ==
                        core::DType::kF32;
            if (all_f32) {
                fusable = (n.kind == OpKind::kActivation &&
                           fusableActivation(n.attrs.activation)) ||
                    n.kind == OpKind::kBatchNorm ||
                    n.kind == OpKind::kAdd;
            }
        } else if (rt[idx] == core::DType::kI8) {
            // Quantized clamp keeps the producer's QuantParams, so
            // mutating the producer's block is exact.
            fusable = n.kind == OpKind::kActivation &&
                (n.attrs.activation == ActKind::kRelu ||
                 n.attrs.activation == ActKind::kRelu6) &&
                !n.inputs.empty() &&
                rt[static_cast<std::size_t>(n.inputs[0])] ==
                    core::DType::kI8;
        }
        if (!fusable)
            continue;
        NodeId src = -1;
        const std::size_t n_ins = n.inputs.size();
        for (std::size_t k = 0; k < n_ins && src < 0; ++k) {
            const NodeId cand = n.inputs[k];
            const auto ci = static_cast<std::size_t>(cand);
            if (consumers[ci] == 1 && !is_output[ci] &&
                core::numElements(nodes[ci].outShape) ==
                    core::numElements(n.outShape) &&
                plan.slots[ci].physicalBytes ==
                    plan.slots[idx].physicalBytes) {
                src = cand;
                src_choice = k;
            }
        }
        (void)src_choice;
        if (src < 0)
            continue;
        MemSlot& s = plan.slots[idx];
        s.inplaceSrc = src;
        const NodeId root =
            plan.slots[static_cast<std::size_t>(src)].root;
        s.root = root;
        MemSlot& rs = plan.slots[static_cast<std::size_t>(root)];
        rs.endStep = std::max(rs.endStep, s.endStep);
    }

    // Greedy best-fit block placement, biggest blocks first (the
    // TFLite greedy-by-size order): each block lands in the smallest
    // offset gap among time-overlapping placed blocks that fits it.
    struct Placed
    {
        std::int64_t offset;
        std::int64_t bytes;
        std::int32_t def;
        std::int32_t end;
    };
    std::vector<std::size_t> order;
    order.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i)
        if (plan.slots[i].root == static_cast<NodeId>(i))
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto ba = plan.slots[a].physicalBytes;
                  const auto bb = plan.slots[b].physicalBytes;
                  if (ba != bb)
                      return ba > bb;
                  if (plan.slots[a].defStep != plan.slots[b].defStep)
                      return plan.slots[a].defStep <
                          plan.slots[b].defStep;
                  return a < b;
              });
    std::vector<Placed> placed;
    placed.reserve(order.size());
    for (std::size_t i : order) {
        MemSlot& s = plan.slots[i];
        const std::int64_t need = alignUp(s.physicalBytes);
        std::vector<Placed> overlapping;
        for (const Placed& p : placed)
            if (!(p.end < s.defStep || p.def > s.endStep))
                overlapping.push_back(p);
        std::sort(overlapping.begin(), overlapping.end(),
                  [](const Placed& a, const Placed& b) {
                      return a.offset < b.offset;
                  });
        std::int64_t best_offset = -1;
        std::int64_t best_gap = 0;
        std::int64_t cursor = 0;
        for (const Placed& p : overlapping) {
            const std::int64_t gap = p.offset - cursor;
            if (gap >= need && (best_offset < 0 || gap < best_gap)) {
                best_offset = cursor;
                best_gap = gap;
            }
            cursor = std::max(cursor, p.offset + p.bytes);
        }
        s.offset = best_offset >= 0 ? best_offset : cursor;
        placed.push_back({s.offset, need, s.defStep, s.endStep});
        plan.arenaBytes = std::max(plan.arenaBytes, s.offset + need);
    }
    // Chain members inherit their root's placement.
    for (std::size_t i = 0; i < n_nodes; ++i) {
        MemSlot& s = plan.slots[i];
        if (s.root != static_cast<NodeId>(i))
            s.offset = plan.slots[static_cast<std::size_t>(s.root)]
                           .offset;
    }

    // Timeline sweep over blocks: the tightest footprint any placement
    // could reach.
    for (std::int32_t t = 0; t <= last_step; ++t) {
        std::int64_t live = 0;
        for (std::size_t i = 0; i < n_nodes; ++i) {
            const MemSlot& s = plan.slots[i];
            if (s.root == static_cast<NodeId>(i) && s.defStep <= t &&
                t <= s.endStep)
                live += s.physicalBytes;
        }
        plan.peakLiveBytes = std::max(plan.peakLiveBytes, live);
    }

    // Replay the legacy refcount executor's accounting (per-edge
    // decrements, outputs pinned, consumer-less nodes never freed) so
    // tests can check the runtime number without running it.
    {
        std::vector<std::int32_t> refs = consumers;
        for (NodeId id : g.outputIds())
            ++refs[static_cast<std::size_t>(id)];
        std::int64_t live = 0;
        for (const Node& n : nodes) {
            live += plan.slots[static_cast<std::size_t>(n.id)]
                        .logicalBytes;
            plan.refcountPeakBytes =
                std::max(plan.refcountPeakBytes, live);
            if (n.kind == OpKind::kInput)
                continue;
            for (NodeId in : n.inputs)
                if (--refs[static_cast<std::size_t>(in)] == 0)
                    live -= plan.slots[static_cast<std::size_t>(in)]
                                .logicalBytes;
        }
    }
    return plan;
}

} // namespace graph
} // namespace edgebench
