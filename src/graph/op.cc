#include "edgebench/graph/op.hh"

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace graph
{

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kInput: return "input";
      case OpKind::kConv2d: return "conv2d";
      case OpKind::kConv3d: return "conv3d";
      case OpKind::kDense: return "dense";
      case OpKind::kBatchNorm: return "batch_norm";
      case OpKind::kActivation: return "activation";
      case OpKind::kSoftmax: return "softmax";
      case OpKind::kMaxPool2d: return "max_pool2d";
      case OpKind::kAvgPool2d: return "avg_pool2d";
      case OpKind::kMaxPool3d: return "max_pool3d";
      case OpKind::kGlobalAvgPool: return "global_avg_pool";
      case OpKind::kAdd: return "add";
      case OpKind::kConcat: return "concat";
      case OpKind::kFlatten: return "flatten";
      case OpKind::kReshape: return "reshape";
      case OpKind::kConcatLast: return "concat_last";
      case OpKind::kPadSpatial: return "pad";
      case OpKind::kUpsample: return "upsample";
      case OpKind::kFusedConvBnAct: return "fused_conv_bn_act";
      case OpKind::kLstm: return "lstm";
      case OpKind::kGru: return "gru";
      case OpKind::kSelectTimestep: return "select_timestep";
      case OpKind::kChannelShuffle: return "channel_shuffle";
      case OpKind::kDetectPostprocess: return "detect_postprocess";
      case OpKind::kYoloDetect: return "yolo_detect";
    }
    throw InternalError("opKindName: unknown OpKind");
}

std::string
actKindName(ActKind kind)
{
    switch (kind) {
      case ActKind::kNone: return "none";
      case ActKind::kRelu: return "relu";
      case ActKind::kRelu6: return "relu6";
      case ActKind::kLeakyRelu: return "leaky_relu";
      case ActKind::kSigmoid: return "sigmoid";
      case ActKind::kTanh: return "tanh";
    }
    throw InternalError("actKindName: unknown ActKind");
}

} // namespace graph
} // namespace edgebench
