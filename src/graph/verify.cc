#include "edgebench/graph/verify.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "edgebench/core/common.hh"
#include "edgebench/core/gemm_packed_int8.hh"
#include "edgebench/graph/passes.hh"

namespace edgebench
{
namespace graph
{

namespace
{

std::string
shapeStr(const core::Shape& s)
{
    return core::shapeToString(s);
}

/** Producer node of input slot @p k, or null when the edge dangles. */
const Node*
producer(const Graph& g, const Node& n, std::size_t k)
{
    if (k >= n.inputs.size())
        return nullptr;
    const NodeId id = n.inputs[k];
    // The n.id bound alone is not enough on a corrupt graph whose ids
    // exceed the append positions; bound by the node count too.
    if (id < 0 || id >= n.id || id >= g.numNodes())
        return nullptr;
    return &g.node(id);
}

/** True when every input edge of @p n resolves (guards later passes). */
bool
edgesResolve(const Graph& g, const Node& n)
{
    for (std::size_t k = 0; k < n.inputs.size(); ++k)
        if (!producer(g, n, k))
            return false;
    return true;
}

/**
 * True when node ids equal append order, every edge resolves, and
 * every registered output exists — the structural preconditions
 * planMemory's bookkeeping indexes by. The plan-based passes skip a
 * graph that fails this; "wellformed" owns reporting the breakage.
 */
bool
graphStructureSound(const Graph& g)
{
    for (std::int64_t i = 0; i < g.numNodes(); ++i) {
        const Node& n = g.nodes()[static_cast<std::size_t>(i)];
        if (n.id != static_cast<NodeId>(i) || !edgesResolve(g, n))
            return false;
    }
    for (NodeId id : g.outputIds())
        if (id < 0 || id >= g.numNodes())
            return false;
    return true;
}

// ---------------------------------------------------------------------
// Pass "shapes": re-derive output/parameter shapes from op semantics.
// ---------------------------------------------------------------------

/** Check declared outShape against the semantics-derived @p expect. */
void
checkOutShape(DiagnosticSink& sink, const Node& n,
              const core::Shape& expect)
{
    if (!core::sameShape(n.outShape, expect)) {
        sink.error(&n,
                   "declared output shape " + shapeStr(n.outShape) +
                       " != " + shapeStr(expect) +
                       " derived from op semantics",
                   "fix the node's outShape or its inputs/attributes");
    }
}

/** Check one declared parameter-shape slot against its contract. */
void
checkParamShape(DiagnosticSink& sink, const Node& n, std::size_t k,
                const core::Shape& expect, const char* what)
{
    if (k >= n.paramShapes.size()) {
        sink.error(&n,
                   std::string(what) + " parameter shape missing "
                       "(expected " + shapeStr(expect) + " at slot " +
                       std::to_string(k) + ")",
                   "declare the parameter shape");
        return;
    }
    if (!core::sameShape(n.paramShapes[k], expect)) {
        sink.error(&n,
                   std::string(what) + " parameter shape " +
                       shapeStr(n.paramShapes[k]) + " != required " +
                       shapeStr(expect),
                   "regenerate the parameter to the contract shape");
    }
    // Materialized tensors must match their declared shapes too.
    if (k < n.params.size() &&
        !core::sameShape(n.params[k].shape(), n.paramShapes[k])) {
        sink.error(&n,
                   std::string(what) + " materialized tensor shape " +
                       shapeStr(n.params[k].shape()) +
                       " != declared paramShapes[" + std::to_string(k) +
                       "] " + shapeStr(n.paramShapes[k]),
                   "rematerialize the parameters");
    }
}

void
checkConv2d(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.conv2d;
    if (s.size() != 4) {
        sink.error(&n, "conv2d input must be rank 4, got " +
                           shapeStr(s));
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n, std::string("conv2d geometry invalid: ") +
                           e.what());
        return;
    }
    if (geom.n != s[0] || geom.inC != s[1] || geom.inH != s[2] ||
        geom.inW != s[3]) {
        sink.error(&n,
                   "conv2d geometry input [" + std::to_string(geom.n) +
                       ", " + std::to_string(geom.inC) + ", " +
                       std::to_string(geom.inH) + ", " +
                       std::to_string(geom.inW) +
                       "] disagrees with producer shape " + shapeStr(s),
                   "rebuild the geometry from the producer's shape");
        return;
    }
    checkOutShape(sink, n,
                  {geom.n, geom.outC, geom.outH(), geom.outW()});
    checkParamShape(sink, n, 0,
                    {geom.outC, geom.inC / geom.groups, geom.kH,
                     geom.kW},
                    "weight");
    if (n.paramShapes.size() > 1)
        checkParamShape(sink, n, 1, {geom.outC}, "bias");
    if (n.paramShapes.size() > 2)
        sink.warn(&n, "conv2d declares " +
                          std::to_string(n.paramShapes.size()) +
                          " parameters; only weight [, bias] are used");
}

void
checkConv3d(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.conv3d;
    if (s.size() != 5) {
        sink.error(&n, "conv3d input must be rank 5, got " +
                           shapeStr(s));
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n, std::string("conv3d geometry invalid: ") +
                           e.what());
        return;
    }
    if (geom.n != s[0] || geom.inC != s[1] || geom.inD != s[2] ||
        geom.inH != s[3] || geom.inW != s[4]) {
        sink.error(&n, "conv3d geometry disagrees with producer shape " +
                           shapeStr(s));
        return;
    }
    checkOutShape(sink, n, {geom.n, geom.outC, geom.outD(), geom.outH(),
                            geom.outW()});
    checkParamShape(sink, n, 0,
                    {geom.outC, geom.inC, geom.kD, geom.kH, geom.kW},
                    "weight");
    if (n.paramShapes.size() > 1)
        checkParamShape(sink, n, 1, {geom.outC}, "bias");
}

void
checkDense(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.dense;
    if (s.size() != 2) {
        sink.error(&n, "dense input must be rank 2, got " + shapeStr(s),
                   "insert a flatten node");
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n, std::string("dense geometry invalid: ") +
                           e.what());
        return;
    }
    if (geom.batch != s[0] || geom.inFeatures != s[1]) {
        sink.error(&n, "dense geometry [" + std::to_string(geom.batch) +
                           ", " + std::to_string(geom.inFeatures) +
                           "] disagrees with producer shape " +
                           shapeStr(s));
        return;
    }
    checkOutShape(sink, n, {geom.batch, geom.outFeatures});
    checkParamShape(sink, n, 0, {geom.outFeatures, geom.inFeatures},
                    "weight");
    if (n.paramShapes.size() > 1)
        checkParamShape(sink, n, 1, {geom.outFeatures}, "bias");
}

void
checkRnn(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.rnn;
    if (s.size() != 3) {
        sink.error(&n, "recurrent input must be [N, T, I], got " +
                           shapeStr(s));
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n,
                   std::string("rnn geometry invalid: ") + e.what());
        return;
    }
    const std::int64_t gates = n.kind == OpKind::kLstm ? 4 : 3;
    if (geom.gates != gates) {
        sink.error(&n,
                   "gate count " + std::to_string(geom.gates) +
                       " != " + std::to_string(gates) + " required by " +
                       opKindName(n.kind));
        return;
    }
    if (geom.batch != s[0] || geom.seqLen != s[1] ||
        geom.inputSize != s[2]) {
        sink.error(&n, "rnn geometry disagrees with producer shape " +
                           shapeStr(s));
        return;
    }
    checkOutShape(sink, n, {geom.batch, geom.seqLen, geom.hiddenSize});
    const std::int64_t gh = geom.gates * geom.hiddenSize;
    checkParamShape(sink, n, 0, {gh, geom.inputSize}, "W_ih");
    checkParamShape(sink, n, 1, {gh, geom.hiddenSize}, "W_hh");
    checkParamShape(sink, n, 2, {gh}, "bias");
}

void
checkPool2d(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.pool2d;
    if (s.size() != 4) {
        sink.error(&n, "pool2d input must be rank 4, got " +
                           shapeStr(s));
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n, std::string("pool2d geometry invalid: ") +
                           e.what());
        return;
    }
    if (geom.n != s[0] || geom.c != s[1] || geom.inH != s[2] ||
        geom.inW != s[3]) {
        sink.error(&n, "pool2d geometry disagrees with producer shape " +
                           shapeStr(s));
        return;
    }
    checkOutShape(sink, n, {s[0], s[1], geom.outH(), geom.outW()});
}

void
checkPool3d(DiagnosticSink& sink, const Graph& g, const Node& n)
{
    const Node* in = producer(g, n, 0);
    if (!in)
        return;
    const auto& s = in->outShape;
    const auto& geom = n.attrs.pool3d;
    if (s.size() != 5) {
        sink.error(&n, "pool3d input must be rank 5, got " +
                           shapeStr(s));
        return;
    }
    try {
        geom.validate();
    } catch (const Error& e) {
        sink.error(&n, std::string("pool3d geometry invalid: ") +
                           e.what());
        return;
    }
    if (geom.n != s[0] || geom.c != s[1] || geom.inD != s[2] ||
        geom.inH != s[3] || geom.inW != s[4]) {
        sink.error(&n, "pool3d geometry disagrees with producer shape " +
                           shapeStr(s));
        return;
    }
    checkOutShape(sink, n, {s[0], s[1], geom.outD(), geom.outH(),
                            geom.outW()});
}

void
shapesPass(const Graph& g, DiagnosticSink& sink)
{
    for (const auto& n : g.nodes()) {
        if (!edgesResolve(g, n))
            continue; // the wellformed pass reports dangling edges
        // A non-input node with no inputs makes producer(g, n, 0)
        // null even though every edge "resolves" (vacuously); the
        // wellformed pass reports that malformation, so skip here
        // rather than dereference.
        if (n.kind != OpKind::kInput && n.inputs.empty())
            continue;
        switch (n.kind) {
          case OpKind::kInput:
            if (n.outShape.empty() ||
                core::numElements(n.outShape) <= 0)
                sink.error(&n, "input shape " + shapeStr(n.outShape) +
                                   " has no elements");
            break;
          case OpKind::kConv2d:
          case OpKind::kFusedConvBnAct:
            checkConv2d(sink, g, n);
            break;
          case OpKind::kConv3d:
            checkConv3d(sink, g, n);
            break;
          case OpKind::kDense:
            checkDense(sink, g, n);
            break;
          case OpKind::kLstm:
          case OpKind::kGru:
            checkRnn(sink, g, n);
            break;
          case OpKind::kMaxPool2d:
          case OpKind::kAvgPool2d:
            checkPool2d(sink, g, n);
            break;
          case OpKind::kMaxPool3d:
            checkPool3d(sink, g, n);
            break;
          case OpKind::kBatchNorm: {
            const Node* in = producer(g, n, 0);
            if (in->outShape.size() < 2) {
                sink.error(&n, "batch_norm input rank must be >= 2");
                break;
            }
            checkOutShape(sink, n, in->outShape);
            const core::Shape c{in->outShape[1]};
            checkParamShape(sink, n, 0, c, "gamma");
            checkParamShape(sink, n, 1, c, "beta");
            checkParamShape(sink, n, 2, c, "mean");
            checkParamShape(sink, n, 3, c, "var");
            break;
          }
          case OpKind::kActivation:
            if (n.attrs.activation == ActKind::kNone)
                sink.error(&n, "activation node with kind 'none'");
            checkOutShape(sink, n, producer(g, n, 0)->outShape);
            break;
          case OpKind::kSoftmax:
          case OpKind::kYoloDetect:
            checkOutShape(sink, n, producer(g, n, 0)->outShape);
            if (n.kind == OpKind::kYoloDetect) {
                const auto& s = producer(g, n, 0)->outShape;
                if (s.size() != 4 ||
                    s[1] !=
                        n.attrs.numAnchors * (5 + n.attrs.numClasses))
                    sink.error(
                        &n,
                        "yolo channels " +
                            std::to_string(s.size() == 4 ? s[1] : -1) +
                            " != anchors(" +
                            std::to_string(n.attrs.numAnchors) +
                            ") * (5 + classes(" +
                            std::to_string(n.attrs.numClasses) + "))",
                        "fix numAnchors/numClasses or the feature map");
            }
            break;
          case OpKind::kGlobalAvgPool: {
            const auto& s = producer(g, n, 0)->outShape;
            if (s.size() != 4) {
                sink.error(&n, "global_avg_pool input must be rank 4");
                break;
            }
            checkOutShape(sink, n, {s[0], s[1]});
            break;
          }
          case OpKind::kAdd: {
            if (n.inputs.size() != 2) {
                sink.error(&n, "add needs exactly 2 inputs, has " +
                                   std::to_string(n.inputs.size()));
                break;
            }
            const auto& a = producer(g, n, 0)->outShape;
            const auto& b = producer(g, n, 1)->outShape;
            if (!core::sameShape(a, b)) {
                sink.error(&n, "add operand shapes differ: " +
                                   shapeStr(a) + " vs " + shapeStr(b));
                break;
            }
            checkOutShape(sink, n, a);
            break;
          }
          case OpKind::kConcat: {
            const auto& s0 = producer(g, n, 0)->outShape;
            if (s0.size() != 4) {
                sink.error(&n, "concat inputs must be rank 4");
                break;
            }
            std::int64_t total_c = 0;
            bool bad = false;
            for (std::size_t k = 0; k < n.inputs.size(); ++k) {
                const auto& s = producer(g, n, k)->outShape;
                if (s.size() != 4 || s[0] != s0[0] || s[2] != s0[2] ||
                    s[3] != s0[3]) {
                    sink.error(&n, "concat operand " +
                                       std::to_string(k) + " shape " +
                                       shapeStr(s) +
                                       " incompatible with " +
                                       shapeStr(s0));
                    bad = true;
                    break;
                }
                total_c += s[1];
            }
            if (!bad)
                checkOutShape(sink, n,
                              {s0[0], total_c, s0[2], s0[3]});
            break;
          }
          case OpKind::kConcatLast: {
            const auto& s0 = producer(g, n, 0)->outShape;
            if (s0.size() < 2) {
                sink.error(&n, "concat_last inputs must be rank >= 2");
                break;
            }
            std::int64_t total_last = 0;
            bool bad = false;
            for (std::size_t k = 0; k < n.inputs.size(); ++k) {
                const auto& s = producer(g, n, k)->outShape;
                if (s.size() != s0.size()) {
                    sink.error(&n, "concat_last rank mismatch at "
                                   "operand " + std::to_string(k));
                    bad = true;
                    break;
                }
                for (std::size_t i = 0; i + 1 < s.size(); ++i)
                    if (s[i] != s0[i]) {
                        sink.error(&n, "concat_last leading dim "
                                       "mismatch at operand " +
                                       std::to_string(k));
                        bad = true;
                        break;
                    }
                if (bad)
                    break;
                total_last += s.back();
            }
            if (!bad) {
                core::Shape expect = s0;
                expect.back() = total_last;
                checkOutShape(sink, n, expect);
            }
            break;
          }
          case OpKind::kFlatten: {
            const auto& s = producer(g, n, 0)->outShape;
            if (s.empty()) {
                sink.error(&n, "flatten of a scalar");
                break;
            }
            std::int64_t rest = 1;
            for (std::size_t i = 1; i < s.size(); ++i)
                rest *= s[i];
            checkOutShape(sink, n, {s[0], rest});
            break;
          }
          case OpKind::kReshape: {
            const auto& s = producer(g, n, 0)->outShape;
            if (core::numElements(n.outShape) != core::numElements(s))
                sink.error(&n,
                           "reshape changes element count: " +
                               shapeStr(s) + " -> " +
                               shapeStr(n.outShape),
                           "reshape must preserve numel");
            break;
          }
          case OpKind::kPadSpatial: {
            const auto& s = producer(g, n, 0)->outShape;
            const auto* p = n.attrs.pads;
            if (s.size() != 4) {
                sink.error(&n, "pad input must be rank 4");
                break;
            }
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[3] < 0) {
                sink.error(&n, "negative padding");
                break;
            }
            checkOutShape(sink, n, {s[0], s[1], s[2] + p[0] + p[1],
                                    s[3] + p[2] + p[3]});
            break;
          }
          case OpKind::kUpsample: {
            const auto& s = producer(g, n, 0)->outShape;
            const std::int64_t f = n.attrs.upsampleFactor;
            if (s.size() != 4) {
                sink.error(&n, "upsample input must be rank 4");
                break;
            }
            if (f < 1) {
                sink.error(&n, "upsample factor " + std::to_string(f) +
                                   " must be >= 1");
                break;
            }
            checkOutShape(sink, n, {s[0], s[1], s[2] * f, s[3] * f});
            break;
          }
          case OpKind::kSelectTimestep: {
            const auto& s = producer(g, n, 0)->outShape;
            if (s.size() != 3) {
                sink.error(&n, "select_timestep input must be "
                               "[N, T, F]");
                break;
            }
            if (n.attrs.timestep < 0 || n.attrs.timestep >= s[1]) {
                sink.error(&n, "timestep " +
                                   std::to_string(n.attrs.timestep) +
                                   " outside [0, " +
                                   std::to_string(s[1]) + ")");
                break;
            }
            checkOutShape(sink, n, {s[0], s[2]});
            break;
          }
          case OpKind::kChannelShuffle: {
            const auto& s = producer(g, n, 0)->outShape;
            const std::int64_t groups = n.attrs.conv2d.groups;
            if (s.size() != 4) {
                sink.error(&n, "channel_shuffle input must be rank 4");
                break;
            }
            if (groups <= 0 || s[1] % groups != 0) {
                sink.error(&n, "channels " + std::to_string(s[1]) +
                                   " not divisible by groups " +
                                   std::to_string(groups));
                break;
            }
            checkOutShape(sink, n, s);
            break;
          }
          case OpKind::kDetectPostprocess: {
            const auto& s = producer(g, n, 0)->outShape;
            if (s.size() != 3 || s[2] != 4 + n.attrs.numClasses) {
                sink.error(&n,
                           "detect input must be [N, boxes, 4 + "
                           "classes(" +
                               std::to_string(n.attrs.numClasses) +
                               ")], got " + shapeStr(s));
                break;
            }
            if (n.outShape.size() != 3 || n.outShape[0] != s[0] ||
                n.outShape[2] < 6)
                sink.error(&n,
                           "detect output must be [N, maxDet, >= 6], "
                           "got " + shapeStr(n.outShape),
                           "rows are [class, score, 4-box]");
            break;
          }
        }
        // Dtype sanity: an int8 annotation on an op without a
        // quantized kernel runs on the dequant fallback (legal but
        // slow); kBin1 has no runtime kernel at all.
        if (n.dtype == core::DType::kI8 && n.outQuant.has_value() &&
            !isInt8Quantizable(n.kind, n))
            sink.warn(&n,
                      "int8 annotation on " + opKindName(n.kind) +
                          " which has no quantized kernel",
                      "the interpreter will dequantize -> fp32 -> "
                      "requantize");
        if (n.dtype == core::DType::kBin1 &&
            n.kind != OpKind::kInput)
            sink.info(&n, "kBin1 annotation is cost-model only; the "
                          "interpreter executes this node in fp32");
    }
}

// ---------------------------------------------------------------------
// Pass "quant": quantization parameter sanity.
// ---------------------------------------------------------------------

bool
scaleUsable(double scale)
{
    return std::isfinite(scale) && scale > 0.0;
}

/** makeRequantScale precondition, replicated without throwing. */
bool
requantRepresentable(double real_multiplier)
{
    if (!std::isfinite(real_multiplier) || real_multiplier <= 0.0)
        return false;
    int exp = 0;
    std::frexp(real_multiplier, &exp);
    // multiplier normalizes to [2^29, 2^30): shift = 30 - exp must
    // land in [1, 62] (quant.cc derives the same bound).
    const int shift = 30 - exp;
    return shift >= 1 && shift <= 62;
}

void
quantPass(const Graph& g, DiagnosticSink& sink)
{
    for (const auto& n : g.nodes()) {
        if (!edgesResolve(g, n))
            continue;
        if (n.outQuant.has_value()) {
            const auto& qp = *n.outQuant;
            if (!scaleUsable(qp.scale))
                sink.error(&n,
                           "activation scale " +
                               std::to_string(qp.scale) +
                               " must be positive and finite",
                           "re-run calibration");
            if (qp.zeroPoint < -128 || qp.zeroPoint > 127)
                sink.error(&n,
                           "zero point " + std::to_string(qp.zeroPoint) +
                               " outside the int8 range [-128, 127]");
            if (n.dtype != core::DType::kI8)
                sink.warn(&n,
                          "QuantParams present but dtype is " +
                              core::dtypeName(n.dtype) +
                              "; the annotation is ignored",
                          "set dtype to int8 or drop outQuant");
        }

        // Integer GEMM contract for the quantized conv/dense paths.
        const bool int8_gemm = n.dtype == core::DType::kI8 &&
            n.outQuant.has_value() &&
            (n.kind == OpKind::kConv2d ||
             n.kind == OpKind::kFusedConvBnAct ||
             n.kind == OpKind::kDense);
        if (!int8_gemm)
            continue;

        const std::int64_t out_c = n.kind == OpKind::kDense
            ? n.attrs.dense.outFeatures
            : n.attrs.conv2d.outC;
        // Strict bias contract: one fp32 bias per output channel.
        if (n.paramShapes.size() > 1 &&
            !core::sameShape(n.paramShapes[1], {out_c}))
            sink.error(&n,
                       "int8 bias shape " + shapeStr(n.paramShapes[1]) +
                           " violates the {outC} contract (outC = " +
                           std::to_string(out_c) + ")");
        if (n.params.size() > 1 &&
            n.params[1].dtype() != core::DType::kF32)
            sink.error(&n,
                       "int8 bias must stay fp32 (got " +
                           core::dtypeName(n.params[1].dtype()) + ")",
                       "the integer kernels add the bias in the real "
                       "domain after requantization scaling");

        // Accumulator depth limit of the packed int8 GEMM.
        const std::int64_t k_depth = n.kind == OpKind::kDense
            ? n.attrs.dense.inFeatures
            : (n.attrs.conv2d.inC / n.attrs.conv2d.groups) *
                n.attrs.conv2d.kH * n.attrs.conv2d.kW;
        if (k_depth > core::kGemmInt8MaxK)
            sink.error(&n,
                       "reduction depth " + std::to_string(k_depth) +
                           " exceeds the int8 GEMM limit " +
                           std::to_string(core::kGemmInt8MaxK),
                       "|acc| < 2^33 no longer holds; split the "
                       "reduction");

        // Requantization multiplier representability needs the full
        // scale triple: producer activation scale, weight scale,
        // output scale. Weights must be materialized int8 for their
        // scale to exist.
        const Node* in = producer(g, n, 0);
        if (!in || !in->outQuant.has_value() || n.params.empty() ||
            n.params[0].dtype() != core::DType::kI8)
            continue;
        const auto& wq = n.params[0].quantParams();
        if (!scaleUsable(wq.scale)) {
            sink.error(&n, "weight scale " + std::to_string(wq.scale) +
                               " must be positive and finite");
            continue;
        }
        if (wq.zeroPoint != 0)
            sink.warn(&n,
                      "weight zero point " +
                          std::to_string(wq.zeroPoint) +
                          " != 0; weights are quantized symmetrically",
                      "requantize the weights with "
                      "chooseSymmetricQuantParams");
        if (!scaleUsable(in->outQuant->scale) ||
            !scaleUsable(n.outQuant->scale))
            continue; // already reported on the owning node
        const double m =
            in->outQuant->scale * wq.scale / n.outQuant->scale;
        if (!requantRepresentable(m))
            sink.error(&n,
                       "requantization multiplier " + std::to_string(m) +
                           " (in_scale * w_scale / out_scale) is not "
                           "representable as a 30-bit fixed-point "
                           "scale",
                       "re-calibrate; the normalized shift must land "
                       "in [1, 62]");
    }
}

// ---------------------------------------------------------------------
// Pass "wellformed": DAG structure, reachability, dead tensors.
// ---------------------------------------------------------------------

void
wellformedPass(const Graph& g, DiagnosticSink& sink)
{
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());

    for (const auto& n : g.nodes()) {
        const auto idx = static_cast<std::size_t>(n.id);
        if (idx >= n_nodes ||
            &g.node(n.id) != &n)
            sink.error(&n,
                       "node id does not equal its append position",
                       "node ids must equal append order (the "
                       "execution order)");
        for (std::size_t k = 0; k < n.inputs.size(); ++k) {
            const NodeId in = n.inputs[k];
            if (in < 0 || in >= g.numNodes())
                sink.error(&n,
                           "input " + std::to_string(k) +
                               " references non-existent node " +
                               std::to_string(in),
                           "dangling edge: remove or retarget it");
            else if (in >= n.id)
                sink.error(&n,
                           "input " + std::to_string(k) +
                               " references node " + std::to_string(in) +
                               " at or after itself",
                           "append order must be a topological order");
        }
        if (n.kind != OpKind::kInput && n.inputs.empty())
            sink.error(&n, "non-input node has no inputs");
        if (n.kind == OpKind::kInput && !n.inputs.empty())
            sink.error(&n, "input node has inputs");
        // Duplicate edges are meaningful for add/concat (x + x,
        // repeated concat operands); elsewhere they are almost always
        // a wiring bug.
        if (n.kind != OpKind::kAdd && n.kind != OpKind::kConcat &&
            n.kind != OpKind::kConcatLast) {
            std::set<NodeId> seen;
            for (NodeId in : n.inputs)
                if (!seen.insert(in).second) {
                    sink.warn(&n,
                              "node " + std::to_string(in) +
                                  " appears more than once in the "
                                  "input list",
                              "duplicate edge");
                    break;
                }
        }
    }

    // Input/output registration.
    for (NodeId id : g.inputIds()) {
        if (id < 0 || id >= g.numNodes())
            sink.error(nullptr, "registered input id " +
                                    std::to_string(id) + " is invalid");
        else if (g.node(id).kind != OpKind::kInput)
            sink.error(&g.node(id),
                       "registered as a graph input but is not an "
                       "input node");
    }
    for (const auto& n : g.nodes()) {
        if (n.kind != OpKind::kInput)
            continue;
        const auto& ids = g.inputIds();
        if (std::find(ids.begin(), ids.end(), n.id) == ids.end())
            sink.error(&n,
                       "input node is not registered via markInput",
                       "the interpreter cannot feed it");
    }
    if (g.outputIds().empty())
        sink.error(nullptr, "graph has no outputs",
                   "call markOutput on at least one node");
    {
        std::set<NodeId> seen;
        for (NodeId id : g.outputIds()) {
            if (id < 0 || id >= g.numNodes()) {
                sink.error(nullptr, "registered output id " +
                                        std::to_string(id) +
                                        " is invalid");
                continue;
            }
            if (!seen.insert(id).second)
                sink.warn(&g.node(id),
                          "marked as a graph output more than once");
        }
    }

    // Reachability from the outputs (dead tensors / unreachable
    // nodes): work the interpreter performs but nothing consumes.
    std::vector<bool> live(n_nodes, false);
    std::vector<NodeId> stack;
    for (NodeId id : g.outputIds())
        if (id >= 0 && id < g.numNodes())
            stack.push_back(id);
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const auto idx = static_cast<std::size_t>(id);
        if (live[idx])
            continue;
        live[idx] = true;
        for (NodeId in : g.node(id).inputs)
            if (in >= 0 && in < g.numNodes())
                stack.push_back(in);
    }
    const auto consumers = g.consumerCounts();
    for (const auto& n : g.nodes()) {
        const auto idx = static_cast<std::size_t>(n.id);
        if (idx >= n_nodes)
            continue; // bad node id, reported above
        if (live[idx])
            continue;
        if (consumers[idx] == 0)
            sink.warn(&n,
                      "dead tensor: computed but never consumed and "
                      "not a graph output",
                      "run eliminateDeadNodes");
        else
            sink.warn(&n,
                      "unreachable from every graph output",
                      "run eliminateDeadNodes");
    }
}

// ---------------------------------------------------------------------
// Pass "parallel": parallel-write-hazard audit.
// ---------------------------------------------------------------------

/**
 * The kernel layer's output partitioning for one node, derived from
 * the node's *attributes and input shapes* (the kernel's view of the
 * work), not from the declared output buffer: @p domain independent
 * work items, each writing @p slice contiguous output elements.
 * domain * slice must equal the declared buffer size or some elements
 * are either written twice, racy, or never written (stale reads).
 * Returns false for ops that execute serially.
 */
bool
writePartition(const Graph& g, const Node& n, std::int64_t& domain,
               std::int64_t& slice)
{
    const Node* in0 = producer(g, n, 0);
    switch (n.kind) {
      case OpKind::kConv2d:
      case OpKind::kFusedConvBnAct: {
        // Both the packed-GEMM and the direct depthwise path assign
        // every (batch, out-channel) plane to exactly one worker
        // chain (GEMM row tiles are groups of whole output rows).
        const auto& geom = n.attrs.conv2d;
        domain = geom.n * geom.outC;
        slice = geom.outH() * geom.outW();
        return true;
      }
      case OpKind::kConv3d: {
        const auto& geom = n.attrs.conv3d;
        domain = geom.n * geom.outC;
        slice = geom.outD() * geom.outH() * geom.outW();
        return true;
      }
      case OpKind::kDense: {
        const auto& geom = n.attrs.dense;
        domain = geom.batch;
        slice = geom.outFeatures;
        return true;
      }
      case OpKind::kLstm:
      case OpKind::kGru: {
        // Gate application partitions (batch x hidden) per timestep;
        // each timestep commit covers one [N, hidden] slab.
        const auto& geom = n.attrs.rnn;
        domain = geom.batch * geom.seqLen * geom.hiddenSize;
        slice = 1;
        return true;
      }
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
        domain = n.attrs.pool2d.outputCount();
        slice = 1;
        return true;
      case OpKind::kMaxPool3d:
        domain = n.attrs.pool3d.outputCount();
        slice = 1;
        return true;
      case OpKind::kBatchNorm:
      case OpKind::kActivation:
      case OpKind::kSoftmax:
      case OpKind::kFlatten:
      case OpKind::kReshape:
      case OpKind::kChannelShuffle:
      case OpKind::kYoloDetect:
        if (!in0)
            return false;
        domain = core::numElements(in0->outShape);
        slice = 1;
        return true;
      case OpKind::kAdd:
        if (!in0)
            return false;
        domain = core::numElements(in0->outShape);
        slice = 1;
        return true;
      case OpKind::kConcat:
      case OpKind::kConcatLast: {
        domain = 0;
        for (std::size_t k = 0; k < n.inputs.size(); ++k) {
            const Node* in = producer(g, n, k);
            if (!in)
                return false;
            domain += core::numElements(in->outShape);
        }
        slice = 1;
        return true;
      }
      case OpKind::kGlobalAvgPool:
        if (!in0 || in0->outShape.size() != 4)
            return false;
        domain = in0->outShape[0] * in0->outShape[1];
        slice = 1;
        return true;
      case OpKind::kPadSpatial: {
        if (!in0 || in0->outShape.size() != 4)
            return false;
        const auto& s = in0->outShape;
        const auto* p = n.attrs.pads;
        domain = s[0] * s[1] * (s[2] + p[0] + p[1]) *
            (s[3] + p[2] + p[3]);
        slice = 1;
        return true;
      }
      case OpKind::kUpsample: {
        if (!in0)
            return false;
        const std::int64_t f = std::max<std::int64_t>(
            n.attrs.upsampleFactor, 1);
        domain = core::numElements(in0->outShape) * f * f;
        slice = 1;
        return true;
      }
      case OpKind::kSelectTimestep:
        if (!in0 || in0->outShape.size() != 3)
            return false;
        domain = in0->outShape[0] * in0->outShape[2];
        slice = 1;
        return true;
      case OpKind::kInput:
      case OpKind::kDetectPostprocess:
        // No parallel kernel: inputs are copied, NMS is serial.
        return false;
    }
    return false;
}

void
parallelPass(const Graph& g, DiagnosticSink& sink)
{
    for (const auto& n : g.nodes()) {
        if (!edgesResolve(g, n))
            continue;
        std::int64_t domain = 0;
        std::int64_t slice = 0;
        if (!writePartition(g, n, domain, slice))
            continue;
        if (domain < 0 || slice <= 0) {
            sink.error(&n, "degenerate write partition (domain " +
                               std::to_string(domain) + ", slice " +
                               std::to_string(slice) + ")");
            continue;
        }
        const std::int64_t written = domain * slice;
        const std::int64_t buffer = core::numElements(n.outShape);
        if (written != buffer) {
            sink.error(&n,
                       "kernel writes " + std::to_string(written) +
                           " elements (" + std::to_string(domain) +
                           " work items x " + std::to_string(slice) +
                           ") but the output buffer holds " +
                           std::to_string(buffer),
                       written > buffer
                           ? "out-of-bounds parallel write"
                           : "elements never written would be read "
                             "stale");
            continue;
        }
        // Replay the pool's contiguous chunking of the work domain at
        // several worker counts: the chunks must tile [0, domain)
        // exactly — disjoint (no two workers write one element) and
        // complete (no element unwritten).
        for (const std::int64_t workers : {1, 2, 3, 4, 7, 8, 16}) {
            const std::int64_t chunk =
                (domain + workers - 1) / workers;
            std::int64_t cursor = 0;
            for (std::int64_t w = 0; w < workers && cursor < domain;
                 ++w) {
                const std::int64_t begin = w * chunk;
                const std::int64_t end =
                    std::min(domain, begin + chunk);
                if (begin != cursor || end < begin) {
                    sink.error(
                        &n,
                        "chunking at " + std::to_string(workers) +
                            " workers leaves [" +
                            std::to_string(cursor) + ", " +
                            std::to_string(begin) +
                            ") uncovered or overlapping");
                    break;
                }
                cursor = end;
            }
            if (cursor != domain) {
                sink.error(&n,
                           "chunking at " + std::to_string(workers) +
                               " workers covers " +
                               std::to_string(cursor) + " of " +
                               std::to_string(domain) + " work items");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Passes "memplan" / "inplace": audits over the static memory plan.
// ---------------------------------------------------------------------

bool
inplaceWhitelisted(const Graph& g, const Node& n, core::DType rt,
                   const std::vector<core::DType>& rts)
{
    if (rt == core::DType::kF32) {
        for (NodeId in : n.inputs)
            if (rts[static_cast<std::size_t>(in)] != core::DType::kF32)
                return false;
        if (n.kind == OpKind::kBatchNorm || n.kind == OpKind::kAdd)
            return true;
        if (n.kind == OpKind::kActivation)
            return n.attrs.activation != ActKind::kNone;
        return false;
    }
    if (rt == core::DType::kI8) {
        if (n.kind != OpKind::kActivation)
            return false;
        if (n.attrs.activation != ActKind::kRelu &&
            n.attrs.activation != ActKind::kRelu6)
            return false;
        return !n.inputs.empty() &&
            rts[static_cast<std::size_t>(n.inputs[0])] ==
                core::DType::kI8;
    }
    (void)g;
    return false;
}

} // namespace

void
auditMemoryPlan(const Graph& g, const MemoryPlan& plan, bool force_f32,
                VerifyReport& report)
{
    DiagnosticSink sink("memplan", report);
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    if (plan.slots.size() != n_nodes) {
        sink.error(nullptr,
                   "plan has " + std::to_string(plan.slots.size()) +
                       " slots for " + std::to_string(n_nodes) +
                       " nodes");
        return;
    }

    bool any_f16 = false;
    for (std::size_t i = 0; i < n_nodes; ++i) {
        const Node& n = g.node(static_cast<NodeId>(i));
        const MemSlot& s = plan.slots[i];
        const core::DType rt = runtimeDType(n, force_f32);
        any_f16 = any_f16 || rt == core::DType::kF16;
        const std::int64_t numel = core::numElements(n.outShape);
        const std::int64_t phys =
            rt == core::DType::kI8 ? numel : numel * 4;
        if (s.physicalBytes != phys)
            sink.error(&n,
                       "slot stores " + std::to_string(s.physicalBytes) +
                           " bytes; the node's activation needs " +
                           std::to_string(phys));
        if (s.offset < 0 || s.offset % kArenaAlign != 0)
            sink.error(&n, "arena offset " + std::to_string(s.offset) +
                               " is not " + std::to_string(kArenaAlign) +
                               "-byte aligned");
        if (s.offset + s.physicalBytes > plan.arenaBytes)
            sink.error(&n,
                       "block [" + std::to_string(s.offset) + ", " +
                           std::to_string(s.offset + s.physicalBytes) +
                           ") exceeds the arena (" +
                           std::to_string(plan.arenaBytes) + " bytes)");
        if (s.defStep != static_cast<std::int32_t>(i) ||
            s.endStep < s.defStep)
            sink.error(&n,
                       "lifetime [" + std::to_string(s.defStep) + ", " +
                           std::to_string(s.endStep) +
                           "] is not a valid interval at step " +
                           std::to_string(i));
        if (s.root < 0 || s.root >= g.numNodes()) {
            sink.error(&n,
                       "block root " + std::to_string(s.root) +
                           " is not a node");
            continue;
        }
        const MemSlot& rs = plan.slots[static_cast<std::size_t>(s.root)];
        if (s.root != static_cast<NodeId>(i)) {
            // Chain member: must live inside its root's block and
            // lifetime.
            if (s.offset != rs.offset ||
                s.physicalBytes != rs.physicalBytes)
                sink.error(&n,
                           "chain member placed at offset " +
                               std::to_string(s.offset) +
                               " but its root block is at " +
                               std::to_string(rs.offset));
            if (s.endStep > rs.endStep || s.defStep < rs.defStep)
                sink.error(&n,
                           "chain member lifetime escapes its root "
                           "block's lifetime");
        }
    }

    // Pairwise live-interval overlap: two root blocks alive at the
    // same step must occupy disjoint byte ranges. This is the
    // no-aliasing proof, independent of the placer's bookkeeping.
    for (std::size_t a = 0; a < n_nodes; ++a) {
        const MemSlot& sa = plan.slots[a];
        if (sa.root != static_cast<NodeId>(a))
            continue;
        for (std::size_t b = a + 1; b < n_nodes; ++b) {
            const MemSlot& sb = plan.slots[b];
            if (sb.root != static_cast<NodeId>(b))
                continue;
            const bool time_overlap = !(sb.endStep < sa.defStep ||
                                        sb.defStep > sa.endStep);
            if (!time_overlap)
                continue;
            const bool byte_overlap =
                sa.offset < sb.offset + sb.physicalBytes &&
                sb.offset < sa.offset + sa.physicalBytes;
            if (byte_overlap)
                sink.error(
                    &g.node(static_cast<NodeId>(b)),
                    "block aliases " +
                        nodeDesc(g.node(static_cast<NodeId>(a))) +
                        " while both are live (steps [" +
                        std::to_string(sa.defStep) + ", " +
                        std::to_string(sa.endStep) + "] vs [" +
                        std::to_string(sb.defStep) + ", " +
                        std::to_string(sb.endStep) + "])",
                    "live-interval overlap: the planner must place "
                    "them disjointly");
        }
    }

    // The arena must never regress past the refcount executor's peak:
    // that is the whole point of planning. Alignment can pad each
    // block by at most one kArenaAlign, and emulated fp16 stores 4
    // bytes per logical 2, so those two slacks are excluded.
    if (!any_f16) {
        std::int64_t roots = 0;
        for (std::size_t i = 0; i < n_nodes; ++i)
            if (plan.slots[i].root == static_cast<NodeId>(i))
                ++roots;
        const std::int64_t bound =
            plan.refcountPeakBytes + roots * kArenaAlign;
        if (plan.arenaBytes > bound)
            sink.warn(nullptr,
                      "arena (" + std::to_string(plan.arenaBytes) +
                          " bytes) exceeds the refcount peak (" +
                          std::to_string(plan.refcountPeakBytes) +
                          " + alignment slack)",
                      "the greedy placer regressed below the legacy "
                      "allocator");
    }
    if (plan.peakLiveBytes > plan.arenaBytes)
        sink.error(nullptr,
                   "peak live bytes " +
                       std::to_string(plan.peakLiveBytes) +
                       " exceed the arena " +
                       std::to_string(plan.arenaBytes));
}

void
auditInplaceReuse(const Graph& g, const MemoryPlan& plan,
                  bool force_f32, VerifyReport& report)
{
    DiagnosticSink sink("inplace", report);
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    if (plan.slots.size() != n_nodes) {
        sink.error(nullptr, "plan does not match the graph");
        return;
    }
    const auto consumers = g.consumerCounts();
    std::vector<bool> is_output(n_nodes, false);
    for (NodeId id : g.outputIds())
        if (id >= 0 && id < g.numNodes())
            is_output[static_cast<std::size_t>(id)] = true;
    std::vector<core::DType> rts(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i)
        rts[i] = runtimeDType(g.node(static_cast<NodeId>(i)),
                              force_f32);
    std::vector<bool> donated(n_nodes, false);

    for (std::size_t i = 0; i < n_nodes; ++i) {
        const MemSlot& s = plan.slots[i];
        if (s.inplaceSrc < 0)
            continue;
        const Node& n = g.node(static_cast<NodeId>(i));
        if (s.inplaceSrc >= g.numNodes()) {
            sink.error(&n, "in-place source " +
                               std::to_string(s.inplaceSrc) +
                               " is not a node");
            continue;
        }
        const auto src = static_cast<std::size_t>(s.inplaceSrc);
        const Node& sn = g.node(s.inplaceSrc);
        if (std::find(n.inputs.begin(), n.inputs.end(),
                      s.inplaceSrc) == n.inputs.end())
            sink.error(&n,
                       "mutates " + nodeDesc(sn) +
                           " which is not one of its inputs");
        if (consumers[src] != 1)
            sink.error(&n,
                       "mutates " + nodeDesc(sn) + " which has " +
                           std::to_string(consumers[src]) +
                           " consumers",
                       "in-place reuse requires a single consumer");
        if (is_output[src])
            sink.error(&n,
                       "mutates " + nodeDesc(sn) +
                           " which is a graph output",
                       "outputs must survive unmodified");
        if (donated[src])
            sink.error(&n, nodeDesc(sn) + " donates its block to more "
                                          "than one consumer");
        donated[src] = true;
        if (plan.slots[src].physicalBytes != s.physicalBytes ||
            core::numElements(sn.outShape) !=
                core::numElements(n.outShape))
            sink.error(&n,
                       "reuses a block of " +
                           std::to_string(plan.slots[src].physicalBytes) +
                           " bytes for an activation of " +
                           std::to_string(s.physicalBytes) + " bytes");
        if (rts[i] != rts[src])
            sink.error(&n,
                       "element type changes across the in-place edge (" +
                           core::dtypeName(rts[src]) + " -> " +
                           core::dtypeName(rts[i]) + ")");
        if (n.kind == OpKind::kLstm || n.kind == OpKind::kGru ||
            sn.kind == OpKind::kLstm || sn.kind == OpKind::kGru)
            sink.error(&n,
                       "recurrent ops re-read their full input while "
                       "committing outputs and can never share "
                       "storage");
        else if (!inplaceWhitelisted(g, n, rts[i], rts))
            sink.error(&n,
                       opKindName(n.kind) +
                           " is not on the in-place whitelist for " +
                           core::dtypeName(rts[i]),
                       "only single-consumer elementwise ops may "
                       "mutate their producer");
        if (s.root != plan.slots[src].root)
            sink.error(&n, "in-place chain root mismatch (slot root " +
                               std::to_string(s.root) + ", source root " +
                               std::to_string(plan.slots[src].root) +
                               ")");
    }
}

namespace
{

void
memplanPass(const Graph& g, VerifyReport& report)
{
    if (!graphStructureSound(g))
        return; // planMemory would index by the broken structure
    for (const bool force_f32 : {false, true}) {
        const MemoryPlan plan = planMemory(g, force_f32);
        auditMemoryPlan(g, plan, force_f32, report);
        if (!force_f32)
            auditInplaceReuse(g, plan, force_f32, report);
    }
}

struct PassEntry
{
    PassInfo info;
    /** Passes emit through a sink bound to their name. */
    std::function<void(const Graph&, VerifyReport&)> run;
};

const std::vector<PassEntry>&
passEntries()
{
    static const std::vector<PassEntry> entries = {
        {{"wellformed",
          "dangling/duplicate edges, append-order ids, unreachable "
          "nodes, dead tensors, input/output registration"},
         [](const Graph& g, VerifyReport& r) {
             DiagnosticSink sink("wellformed", r);
             wellformedPass(g, sink);
         }},
        {{"shapes",
          "shape/dtype re-inference from op semantics vs declared "
          "tensor and parameter shapes"},
         [](const Graph& g, VerifyReport& r) {
             DiagnosticSink sink("shapes", r);
             shapesPass(g, sink);
         }},
        {{"quant",
          "quantization sanity: scales, zero points, the int8 bias "
          "contract, requantization representability"},
         [](const Graph& g, VerifyReport& r) {
             DiagnosticSink sink("quant", r);
             quantPass(g, sink);
         }},
        {{"memplan",
          "static replay of MemoryPlan lifetimes: no aliasing of "
          "live blocks, aligned in-arena placement, arena within the "
          "refcount-peak bound"},
         [](const Graph& g, VerifyReport& r) { memplanPass(g, r); }},
        {{"parallel",
          "parallel-write-hazard audit: kernel output partitions "
          "tile the declared buffer with disjoint ranges"},
         [](const Graph& g, VerifyReport& r) {
             DiagnosticSink sink("parallel", r);
             parallelPass(g, sink);
         }},
        {{"inplace",
          "legality of every in-place reuse the planner chose"},
         [](const Graph& g, VerifyReport& r) {
             if (!graphStructureSound(g))
                 return; // see memplanPass
             const MemoryPlan plan = planMemory(g, false);
             auditInplaceReuse(g, plan, false, r);
         }},
    };
    return entries;
}

} // namespace

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::kInfo: return "info";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::format() const
{
    std::ostringstream oss;
    oss << severityName(severity) << "[" << pass << "]";
    if (!nodeName.empty())
        oss << " " << nodeName;
    oss << ": " << message;
    if (!hint.empty())
        oss << " (hint: " << hint << ")";
    return oss.str();
}

std::int64_t
VerifyReport::count(Severity s) const
{
    std::int64_t n = 0;
    for (const auto& d : diagnostics)
        if (d.severity == s)
            ++n;
    return n;
}

std::string
VerifyReport::summary() const
{
    std::ostringstream oss;
    oss << errors() << " errors, " << warnings() << " warnings, "
        << count(Severity::kInfo) << " info";
    return oss.str();
}

void
DiagnosticSink::emit(Severity sev, const Node* n, std::string msg,
                     std::string hint)
{
    Diagnostic d;
    d.severity = sev;
    d.pass = pass_;
    if (n) {
        d.node = n->id;
        d.nodeName = nodeDesc(*n);
    }
    d.message = std::move(msg);
    d.hint = std::move(hint);
    report_.diagnostics.push_back(std::move(d));
}

Verifier::Verifier() : enabled_(passEntries().size(), true) {}

const std::vector<PassInfo>&
Verifier::passes()
{
    static const std::vector<PassInfo> infos = [] {
        std::vector<PassInfo> v;
        for (const auto& e : passEntries())
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

void
Verifier::setEnabled(const std::string& pass, bool on)
{
    const auto& entries = passEntries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].info.name == pass) {
            enabled_[i] = on;
            return;
        }
    }
    EB_CHECK(false, "unknown verifier pass '" << pass << "'");
}

bool
Verifier::enabled(const std::string& pass) const
{
    const auto& entries = passEntries();
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (entries[i].info.name == pass)
            return enabled_[i];
    EB_CHECK(false, "unknown verifier pass '" << pass << "'");
    return false;
}

VerifyReport
Verifier::run(const Graph& g) const
{
    VerifyReport report;
    const auto& entries = passEntries();
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (enabled_[i])
            entries[i].run(g, report);
    return report;
}

VerifyReport
verifyGraph(const Graph& g)
{
    return Verifier().run(g);
}

void
verifyOrThrow(const Graph& g, const std::string& context)
{
    const VerifyReport report = verifyGraph(g);
    if (report.ok())
        return;
    std::ostringstream oss;
    oss << context << ": graph '" << g.name() << "' failed "
        << "verification with " << report.errors() << " error(s):";
    for (const auto& d : report.diagnostics)
        if (d.severity == Severity::kError)
            oss << "\n  " << d.format();
    oss << "\n(set EDGEBENCH_VERIFY=off to bypass)";
    throw InvalidArgumentError(oss.str());
}

bool
verifyEnvEnabled()
{
    const char* e = std::getenv("EDGEBENCH_VERIFY");
    if (!e)
        return true;
    std::string v(e);
    for (char& c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return !(v == "0" || v == "off" || v == "false");
}

} // namespace graph
} // namespace edgebench
