#include "edgebench/graph/export.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <unordered_set>

namespace edgebench
{
namespace graph
{

void
printSummary(const Graph& g, std::ostream& os)
{
    os << "Model: " << g.name() << " (input "
       << g.inputDescription() << ")\n";
    os << std::left << std::setw(5) << "id" << std::setw(26) << "name"
       << std::setw(20) << "kind" << std::setw(22) << "output"
       << std::setw(6) << "prec" << std::right << std::setw(12)
       << "params" << std::setw(16) << "MACs" << "\n";
    os << std::string(107, '-') << "\n";
    for (const auto& n : g.nodes()) {
        os << std::left << std::setw(5) << n.id << std::setw(26)
           << n.name.substr(0, 25) << std::setw(20)
           << opKindName(n.kind) << std::setw(22)
           << core::shapeToString(n.outShape) << std::setw(6)
           << core::dtypeName(n.dtype) << std::right << std::setw(12)
           << n.paramElems() << std::setw(16) << n.macs() << "\n";
    }
    const auto st = g.stats();
    os << std::string(107, '-') << "\n"
       << "total: " << st.numNodes << " nodes, " << st.params
       << " params (" << st.paramBytes / 1e6 << " MB), " << st.macs
       << " MACs, FLOP/param " << st.flopPerParam << "\n";
}

void
writeDot(const Graph& g, std::ostream& os)
{
    std::unordered_set<NodeId> outputs(g.outputIds().begin(),
                                       g.outputIds().end());
    os << "digraph \"" << g.name() << "\" {\n"
       << "  rankdir=TB;\n"
       << "  node [shape=box, fontsize=10];\n";
    for (const auto& n : g.nodes()) {
        os << "  n" << n.id << " [label=\"" << n.name << "\\n"
           << opKindName(n.kind) << " "
           << core::shapeToString(n.outShape) << "\"";
        if (n.kind == OpKind::kInput)
            os << ", style=filled, fillcolor=lightblue";
        else if (outputs.count(n.id))
            os << ", style=filled, fillcolor=lightsalmon";
        os << "];\n";
    }
    for (const auto& n : g.nodes())
        for (auto in : n.inputs)
            os << "  n" << in << " -> n" << n.id << ";\n";
    os << "}\n";
}

} // namespace graph
} // namespace edgebench
