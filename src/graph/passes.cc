#include "edgebench/graph/passes.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgebench/core/common.hh"
#include "edgebench/graph/interpreter.hh"

namespace edgebench
{
namespace graph
{

namespace
{

/** Copy graph-level metadata. */
Graph
cloneHeader(const Graph& g)
{
    Graph out(g.name());
    out.setInputDescription(g.inputDescription());
    return out;
}

/** Build per-node consumer lists. */
std::vector<std::vector<NodeId>>
consumersOf(const Graph& g)
{
    std::vector<std::vector<NodeId>> consumers(
        static_cast<std::size_t>(g.numNodes()));
    for (const auto& n : g.nodes())
        for (NodeId in : n.inputs)
            consumers[static_cast<std::size_t>(in)].push_back(n.id);
    return consumers;
}

bool
isFusableActivation(const Node& n)
{
    if (n.kind != OpKind::kActivation)
        return false;
    switch (n.attrs.activation) {
      case ActKind::kRelu:
      case ActKind::kRelu6:
      case ActKind::kLeakyRelu:
        return true;
      default:
        return false;
    }
}

/** Fold BN params into conv weights/bias (materialized graphs). */
void
foldBatchNorm(Node& fused, const Node& bn)
{
    const core::Tensor gamma = bn.params[0].toF32();
    const core::Tensor beta = bn.params[1].toF32();
    const core::Tensor mean = bn.params[2].toF32();
    const core::Tensor var = bn.params[3].toF32();
    const double eps = bn.attrs.bnEpsilon;

    core::Tensor w = fused.params[0].toF32();
    const std::int64_t out_c = w.shape()[0];
    const std::int64_t per_filter = w.numel() / out_c;
    const bool had_bias = fused.params.size() > 1;
    core::Tensor b = had_bias ? fused.params[1].toF32()
                              : core::Tensor::zeros({out_c});

    auto wd = w.data();
    auto bd = b.data();
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
        const double inv_std = 1.0 /
            std::sqrt(static_cast<double>(var.at(oc)) + eps);
        const double scale = gamma.at(oc) * inv_std;
        const double shift = beta.at(oc) - mean.at(oc) * scale;
        for (std::int64_t i = 0; i < per_filter; ++i)
            wd[oc * per_filter + i] = static_cast<float>(
                wd[oc * per_filter + i] * scale);
        bd[oc] = static_cast<float>(bd[oc] * scale + shift);
    }
    fused.params.clear();
    fused.params.push_back(std::move(w));
    fused.params.push_back(std::move(b));
    if (fused.paramShapes.size() < 2)
        fused.paramShapes.push_back({out_c});
}

} // namespace

PassResult
fuseConvBnAct(const Graph& g)
{
    const auto consumers = consumersOf(g);

    // For each node: the id of the fusion group leader that replaces
    // it, or -1 when the node survives on its own.
    std::vector<NodeId> replaced_by(
        static_cast<std::size_t>(g.numNodes()), -1);
    std::vector<bool> absorbed(static_cast<std::size_t>(g.numNodes()),
                               false);

    // Identify patterns first (ids refer to the original graph).
    struct Group
    {
        NodeId conv;
        NodeId bn = -1;
        NodeId act = -1;
    };
    std::vector<Group> groups(static_cast<std::size_t>(g.numNodes()));
    std::vector<bool> is_leader(static_cast<std::size_t>(g.numNodes()),
                                false);

    const auto& output_ids = g.outputIds();
    auto is_output = [&](NodeId id) {
        return std::find(output_ids.begin(), output_ids.end(), id) !=
            output_ids.end();
    };

    for (const auto& n : g.nodes()) {
        if (n.kind != OpKind::kConv2d)
            continue;
        Group grp{n.id};
        NodeId tail = n.id;
        // conv -> bn (only when conv feeds exactly the bn).
        const auto& cons = consumers[static_cast<std::size_t>(tail)];
        if (cons.size() == 1 && !is_output(tail) &&
            g.node(cons[0]).kind == OpKind::kBatchNorm) {
            grp.bn = cons[0];
            tail = cons[0];
        }
        const auto& cons2 = consumers[static_cast<std::size_t>(tail)];
        if (cons2.size() == 1 && !is_output(tail) &&
            isFusableActivation(g.node(cons2[0]))) {
            grp.act = cons2[0];
        }
        if (grp.bn < 0 && grp.act < 0)
            continue; // nothing to fuse
        is_leader[static_cast<std::size_t>(n.id)] = true;
        groups[static_cast<std::size_t>(n.id)] = grp;
        if (grp.bn >= 0) {
            absorbed[static_cast<std::size_t>(grp.bn)] = true;
            replaced_by[static_cast<std::size_t>(grp.bn)] = n.id;
        }
        if (grp.act >= 0) {
            absorbed[static_cast<std::size_t>(grp.act)] = true;
            replaced_by[static_cast<std::size_t>(grp.act)] = n.id;
        }
    }

    // Rebuild the graph.
    Graph out = cloneHeader(g);
    std::vector<NodeId> remap(static_cast<std::size_t>(g.numNodes()),
                              -1);
    std::int64_t rewrites = 0;

    auto resolve = [&](NodeId old_id) {
        NodeId target = old_id;
        if (replaced_by[static_cast<std::size_t>(old_id)] >= 0)
            target = replaced_by[static_cast<std::size_t>(old_id)];
        const NodeId mapped = remap[static_cast<std::size_t>(target)];
        EB_CHECK(mapped >= 0, "fusion: forward reference to node "
                                  << target);
        return mapped;
    };

    for (const auto& n : g.nodes()) {
        if (absorbed[static_cast<std::size_t>(n.id)])
            continue;
        Node copy = n;
        copy.params = n.params;
        for (auto& in : copy.inputs)
            in = resolve(in);
        if (is_leader[static_cast<std::size_t>(n.id)]) {
            const auto& grp = groups[static_cast<std::size_t>(n.id)];
            copy.kind = OpKind::kFusedConvBnAct;
            copy.name = n.name + "_fused";
            if (grp.act >= 0) {
                const auto& act = g.node(grp.act);
                copy.attrs.activation = act.attrs.activation;
                copy.attrs.leakySlope = act.attrs.leakySlope;
            } else {
                copy.attrs.activation = ActKind::kNone;
            }
            if (grp.bn >= 0) {
                if (g.materialized()) {
                    foldBatchNorm(copy, g.node(grp.bn));
                } else if (copy.paramShapes.size() < 2) {
                    // Folding introduces a bias parameter.
                    copy.paramShapes.push_back(
                        {copy.attrs.conv2d.outC});
                }
            }
            ++rewrites;
        }
        const NodeId new_id = out.appendRaw(std::move(copy));
        remap[static_cast<std::size_t>(n.id)] = new_id;
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(resolve(id));
    return {std::move(out), rewrites};
}

bool
isInt8Quantizable(OpKind kind, const Node& node)
{
    switch (kind) {
      case OpKind::kInput:
      case OpKind::kConv2d:
      case OpKind::kFusedConvBnAct:
      case OpKind::kDense:
      case OpKind::kAdd:
      case OpKind::kConcat:
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
      case OpKind::kGlobalAvgPool:
      case OpKind::kFlatten:
      case OpKind::kReshape:
      case OpKind::kConcatLast:
      case OpKind::kPadSpatial:
      case OpKind::kUpsample:
      case OpKind::kChannelShuffle:
        return true;
      case OpKind::kActivation:
        return node.attrs.activation == ActKind::kRelu ||
            node.attrs.activation == ActKind::kRelu6;
      default:
        // softmax, detection heads, batch_norm (pre-fusion), conv3d:
        // no int8 kernel -> stays fp32 (partial delegation).
        return false;
    }
}

PassResult
quantizeInt8(const Graph& g,
             const std::vector<core::Tensor>* calibration_inputs)
{
    Graph out = cloneHeader(g);
    std::int64_t rewrites = 0;

    std::vector<std::pair<double, double>> ranges;
    if (g.materialized()) {
        EB_CHECK(calibration_inputs != nullptr,
                 "quantizeInt8: materialized graph requires "
                 "calibration inputs");
        Interpreter interp(g);
        ranges = interp.calibrate(*calibration_inputs);
    }

    for (const auto& n : g.nodes()) {
        Node copy = n;
        copy.params = n.params;
        if (isInt8Quantizable(n.kind, n)) {
            copy.dtype = core::DType::kI8;
            if (!ranges.empty()) {
                auto [mn, mx] =
                    ranges[static_cast<std::size_t>(n.id)];
                if (!(mn <= mx)) { // node never observed
                    mn = 0.0;
                    mx = 1.0;
                }
                copy.outQuant = core::chooseQuantParams(mn, mx);
                // Symmetric weight quantization (TensorRT scheme).
                if ((n.kind == OpKind::kConv2d ||
                     n.kind == OpKind::kFusedConvBnAct ||
                     n.kind == OpKind::kDense) &&
                    !copy.params.empty()) {
                    const core::Tensor wf = copy.params[0].toF32();
                    double amax = 0.0;
                    for (float v : wf.data())
                        amax = std::max(amax,
                                        std::fabs(
                                            static_cast<double>(v)));
                    copy.params[0] = wf.toInt8(
                        core::chooseSymmetricQuantParams(amax));
                }
            }
            ++rewrites;
        }
        const NodeId new_id = out.appendRaw(std::move(copy));
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(id);
    return {std::move(out), rewrites};
}

PassResult
convertToF16(const Graph& g)
{
    Graph out = cloneHeader(g);
    std::int64_t rewrites = 0;
    for (const auto& n : g.nodes()) {
        Node copy = n;
        copy.params = n.params;
        if (copy.dtype == core::DType::kF32) {
            copy.dtype = core::DType::kF16;
            for (auto& p : copy.params)
                p = p.toF16();
            ++rewrites;
        }
        const NodeId new_id = out.appendRaw(std::move(copy));
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(id);
    return {std::move(out), rewrites};
}

PassResult
pruneWeights(const Graph& g, double fraction)
{
    EB_CHECK(fraction >= 0.0 && fraction < 1.0,
             "pruneWeights: fraction " << fraction
                                       << " outside [0, 1)");
    Graph out = cloneHeader(g);
    std::int64_t rewrites = 0;
    for (const auto& n : g.nodes()) {
        Node copy = n;
        copy.params = n.params;
        const bool prunable = n.kind == OpKind::kConv2d ||
            n.kind == OpKind::kFusedConvBnAct ||
            n.kind == OpKind::kConv3d || n.kind == OpKind::kDense;
        if (prunable) {
            copy.weightSparsity = fraction;
            if (!copy.params.empty())
                copy.params[0] =
                    copy.params[0].toF32().prunedByMagnitude(fraction);
            ++rewrites;
        }
        const NodeId new_id = out.appendRaw(std::move(copy));
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(id);
    return {std::move(out), rewrites};
}

PassResult
eliminateDeadNodes(const Graph& g)
{
    std::vector<bool> live(static_cast<std::size_t>(g.numNodes()),
                           false);
    std::vector<NodeId> stack(g.outputIds().begin(),
                              g.outputIds().end());
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        if (live[static_cast<std::size_t>(id)])
            continue;
        live[static_cast<std::size_t>(id)] = true;
        for (NodeId in : g.node(id).inputs)
            stack.push_back(in);
    }

    Graph out = cloneHeader(g);
    std::vector<NodeId> remap(static_cast<std::size_t>(g.numNodes()),
                              -1);
    std::int64_t removed = 0;
    for (const auto& n : g.nodes()) {
        if (!live[static_cast<std::size_t>(n.id)]) {
            ++removed;
            continue;
        }
        Node copy = n;
        copy.params = n.params;
        for (auto& in : copy.inputs) {
            in = remap[static_cast<std::size_t>(in)];
            EB_CHECK(in >= 0, "dead-node elim: dangling input");
        }
        const NodeId new_id = out.appendRaw(std::move(copy));
        remap[static_cast<std::size_t>(n.id)] = new_id;
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(remap[static_cast<std::size_t>(id)]);
    return {std::move(out), removed};
}

PassResult
rebatch(const Graph& g, std::int64_t batch)
{
    EB_CHECK(batch > 0, "rebatch: batch must be positive, got "
                            << batch);
    EB_CHECK(!g.materialized(),
             "rebatch: only deferred graphs can be re-batched");
    Graph out = cloneHeader(g);
    std::int64_t rewrites = 0;
    for (const auto& n : g.nodes()) {
        Node copy = n;
        if (!copy.outShape.empty() && copy.outShape[0] != batch) {
            copy.outShape[0] = batch;
            ++rewrites;
        }
        copy.attrs.conv2d.n = batch;
        copy.attrs.conv3d.n = batch;
        copy.attrs.pool2d.n = batch;
        copy.attrs.pool3d.n = batch;
        copy.attrs.dense.batch = batch;
        copy.attrs.rnn.batch = batch;
        const NodeId new_id = out.appendRaw(std::move(copy));
        if (n.kind == OpKind::kInput)
            out.markInput(new_id);
    }
    for (NodeId id : g.outputIds())
        out.markOutput(id);
    return {std::move(out), rewrites};
}

} // namespace graph
} // namespace edgebench
