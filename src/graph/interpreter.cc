#include "edgebench/graph/interpreter.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/kernels_rnn.hh"
#include "edgebench/graph/verify.hh"

namespace edgebench
{
namespace graph
{

namespace
{

/** Shared empty tensor for the "no bias" kernel argument. */
const core::Tensor&
emptyTensor()
{
    static const core::Tensor t;
    return t;
}

/** EDGEBENCH_MEMPLAN env toggle: default on, 0/off/false disables. */
bool
memPlanEnvEnabled()
{
    const char* e = std::getenv("EDGEBENCH_MEMPLAN");
    if (!e)
        return true;
    std::string v(e);
    for (char& c : v)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return !(v == "0" || v == "off" || v == "false");
}

/**
 * Ops whose kernels rely on a zero-initialized output (they only
 * write part of it, or accumulate across timesteps). Their arena
 * slots are cleared at hand-out; everything else writes every element
 * and skips the memset.
 */
bool
needsZeroFill(OpKind k)
{
    switch (k) {
      case OpKind::kPadSpatial:
      case OpKind::kDetectPostprocess:
      case OpKind::kConv3d:
      case OpKind::kMaxPool3d:
      case OpKind::kLstm:
      case OpKind::kGru:
        return true;
      default:
        return false;
    }
}

/** Disarm the output sink on scope exit (exception safety). */
struct SinkDisarm
{
    ~SinkDisarm() { core::OutputSink::disarm(); }
};

/** Simplified per-class NMS over a [boxes, 4+classes] tensor. */
core::Tensor
detectPostprocess(const core::Tensor& in, const Node& n)
{
    const auto& s = in.shape();
    const std::int64_t batch = s[0];
    const std::int64_t boxes = s[1];
    const std::int64_t stride = s[2];
    const std::int64_t classes = n.attrs.numClasses;
    const std::int64_t max_det = n.outShape[1];
    // Output row stride comes from the node's declared output shape,
    // not a hard-coded 6: a detection head with extra per-detection
    // fields (e.g. [class, score, box, angle]) must not write rows at
    // the wrong pitch.
    const std::int64_t out_stride = n.outShape[2];
    EB_CHECK(out_stride >= 6,
             "detectPostprocess: " << nodeDesc(n) << ": output stride "
                 << out_stride
                 << " too small for [class, score, 4-box]");

    core::Tensor out(n.outShape); // zero-filled; score==0 => unused slot
    auto data = in.data();

    struct Det
    {
        float score;
        std::int64_t cls;
        float box[4];
    };

    for (std::int64_t b = 0; b < batch; ++b) {
        std::vector<Det> dets;
        const float* base = data.data() + b * boxes * stride;
        for (std::int64_t i = 0; i < boxes; ++i) {
            const float* row = base + i * stride;
            for (std::int64_t c = 0; c < classes; ++c) {
                const float score = row[4 + c];
                if (score >= n.attrs.scoreThreshold)
                    dets.push_back(
                        {score, c, {row[0], row[1], row[2], row[3]}});
            }
        }
        std::sort(dets.begin(), dets.end(),
                  [](const Det& a, const Det& b) {
                      return a.score > b.score;
                  });
        // Greedy per-class IoU suppression.
        auto iou = [](const float* a, const float* b) {
            const float x1 = std::max(a[0], b[0]);
            const float y1 = std::max(a[1], b[1]);
            const float x2 = std::min(a[2], b[2]);
            const float y2 = std::min(a[3], b[3]);
            const float inter = std::max(0.0f, x2 - x1) *
                std::max(0.0f, y2 - y1);
            const float area_a = std::max(0.0f, a[2] - a[0]) *
                std::max(0.0f, a[3] - a[1]);
            const float area_b = std::max(0.0f, b[2] - b[0]) *
                std::max(0.0f, b[3] - b[1]);
            const float uni = area_a + area_b - inter;
            return uni > 0.0f ? inter / uni : 0.0f;
        };
        std::vector<Det> kept;
        for (const auto& d : dets) {
            bool suppressed = false;
            for (const auto& k : kept) {
                if (k.cls == d.cls &&
                    iou(k.box, d.box) > n.attrs.iouThreshold) {
                    suppressed = true;
                    break;
                }
            }
            if (!suppressed) {
                kept.push_back(d);
                if (static_cast<std::int64_t>(kept.size()) >= max_det)
                    break;
            }
        }
        auto odata = out.data();
        for (std::size_t i = 0; i < kept.size(); ++i) {
            float* row = odata.data() + (b * max_det +
                                         static_cast<std::int64_t>(i)) *
                out_stride;
            row[0] = static_cast<float>(kept[i].cls);
            row[1] = kept[i].score;
            std::copy_n(kept[i].box, 4, row + 2);
        }
    }
    return out;
}

/** YOLO region decode: sigmoid on xy/objectness/classes, keep wh raw. */
core::Tensor
yoloDetect(const core::Tensor& in, const Node& n)
{
    const auto& s = in.shape();
    const std::int64_t batch = s[0];
    const std::int64_t per_anchor = 5 + n.attrs.numClasses;
    // The decode below walks channels as numAnchors blocks of
    // per_anchor; a mismatched channel count would silently read the
    // wrong planes (or past the end) instead of failing loudly.
    EB_CHECK(s.size() == 4 &&
                 s[1] == n.attrs.numAnchors * per_anchor,
             "yoloDetect: " << nodeDesc(n) << ": input channels "
                 << s[1] << " != anchors(" << n.attrs.numAnchors
                 << ") * (5 + classes(" << n.attrs.numClasses << "))");
    const std::int64_t hw = s[2] * s[3];
    core::Tensor out(in.shape());
    auto src = in.data();
    auto dst = out.data();
    for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t a = 0; a < n.attrs.numAnchors; ++a)
    for (std::int64_t f = 0; f < per_anchor; ++f) {
        const std::int64_t c = a * per_anchor + f;
        const float* srow = src.data() + (b * s[1] + c) * hw;
        float* drow = dst.data() + (b * s[1] + c) * hw;
        const bool apply_sigmoid = (f == 0 || f == 1 || f >= 4);
        for (std::int64_t i = 0; i < hw; ++i) {
            drow[i] = apply_sigmoid
                ? 1.0f / (1.0f + std::exp(-srow[i]))
                : srow[i];
        }
    }
    return out;
}

} // namespace

Interpreter::Interpreter(const Graph& graph)
    : graph_(graph), useMemPlan_(memPlanEnvEnabled())
{
    EB_CHECK(graph.materialized(),
             "Interpreter requires a materialized graph (call "
             "materializeParams first)");
    EB_CHECK(!graph.outputIds().empty(),
             "Interpreter: graph " << graph.name() << " has no outputs");
    // Static verification at compile time: catch mis-shaped edges, bad
    // quant params and planner bugs before the first run ever executes.
    if (verifyEnvEnabled())
        verifyOrThrow(graph, "Interpreter");
    paramF32_.resize(static_cast<std::size_t>(graph.numNodes()));
    paramI8_.resize(static_cast<std::size_t>(graph.numNodes()));
    packedConv_.resize(static_cast<std::size_t>(graph.numNodes()));
    packedDense_.resize(static_cast<std::size_t>(graph.numNodes()));
    packedRnn_.resize(static_cast<std::size_t>(graph.numNodes()));
    packedConvI8_.resize(static_cast<std::size_t>(graph.numNodes()));
    packedDenseI8_.resize(static_cast<std::size_t>(graph.numNodes()));
}

const core::PackedConvWeights&
Interpreter::packedConv(const Node& n)
{
    auto& slot = packedConv_[static_cast<std::size_t>(n.id)];
    if (!slot)
        slot = core::packConv2dWeights(paramF32(n, 0), n.attrs.conv2d);
    return *slot;
}

const core::PackedA&
Interpreter::packedDense(const Node& n)
{
    auto& slot = packedDense_[static_cast<std::size_t>(n.id)];
    if (!slot)
        slot = core::packDenseWeights(paramF32(n, 0), n.attrs.dense);
    return *slot;
}

const core::PackedConvWeightsI8&
Interpreter::packedConvI8(const Node& n)
{
    auto& slot = packedConvI8_[static_cast<std::size_t>(n.id)];
    if (!slot)
        slot = core::packConv2dWeightsInt8(paramI8(n, 0),
                                           n.attrs.conv2d);
    return *slot;
}

const core::PackedAI8&
Interpreter::packedDenseI8(const Node& n)
{
    auto& slot = packedDenseI8_[static_cast<std::size_t>(n.id)];
    if (!slot)
        slot = core::packDenseWeightsInt8(paramI8(n, 0),
                                          n.attrs.dense);
    return *slot;
}

const core::PackedRnnWeights&
Interpreter::packedRnn(const Node& n)
{
    auto& slot = packedRnn_[static_cast<std::size_t>(n.id)];
    if (!slot)
        slot = core::packRnnWeights(paramF32(n, 0), paramF32(n, 1),
                                    n.attrs.rnn);
    return *slot;
}

const core::Tensor&
Interpreter::paramF32(const Node& n, std::size_t k)
{
    const core::Tensor& p = n.params[k];
    if (p.dtype() == core::DType::kF32)
        return p;
    auto& slots = paramF32_[static_cast<std::size_t>(n.id)];
    if (slots.size() < n.params.size())
        slots.resize(n.params.size());
    auto& slot = slots[k];
    if (!slot)
        slot = p.toF32();
    return *slot;
}

const core::Tensor&
Interpreter::paramI8(const Node& n, std::size_t k)
{
    const core::Tensor& p = n.params[k];
    if (p.dtype() == core::DType::kI8)
        return p;
    auto& slots = paramI8_[static_cast<std::size_t>(n.id)];
    if (slots.size() < n.params.size())
        slots.resize(n.params.size());
    auto& slot = slots[k];
    if (!slot)
        slot = p.toInt8();
    return *slot;
}

std::vector<core::Tensor>
Interpreter::run(const std::vector<core::Tensor>& inputs)
{
    return runImpl(inputs, /*force_f32=*/false, nullptr);
}

void
Interpreter::setTracer(obs::Tracer* tracer,
                       const std::vector<double>* per_node_ms)
{
    tracer_ = tracer;
    nodeMs_.clear();
    if (per_node_ms) {
        EB_CHECK(static_cast<std::int64_t>(per_node_ms->size()) ==
                     graph_.numNodes(),
                 "setTracer: got " << per_node_ms->size()
                                   << " per-node costs for "
                                   << graph_.numNodes() << " nodes");
        nodeMs_ = *per_node_ms;
    }
}

std::vector<std::pair<double, double>>
Interpreter::calibrate(const std::vector<core::Tensor>& inputs)
{
    std::vector<std::pair<double, double>> ranges(
        static_cast<std::size_t>(graph_.numNodes()),
        {std::numeric_limits<double>::infinity(),
         -std::numeric_limits<double>::infinity()});
    runImpl(inputs, /*force_f32=*/true, &ranges);
    return ranges;
}

const MemoryPlan&
Interpreter::memoryPlan(bool force_f32)
{
    auto& slot = force_f32 ? planF32_ : planNative_;
    if (!slot)
        slot = planMemory(graph_, force_f32);
    return *slot;
}

std::vector<core::Tensor>
Interpreter::runImpl(const std::vector<core::Tensor>& inputs,
                     bool force_f32,
                     std::vector<std::pair<double, double>>* ranges)
{
    const auto& input_ids = graph_.inputIds();
    EB_CHECK(inputs.size() == input_ids.size(),
             "run: expected " << input_ids.size() << " inputs, got "
                              << inputs.size());

    stats_ = RunStats{};

    // Planner path: all activations live in one arena slab at offsets
    // the static plan assigned. The slab is float-typed and the base
    // is re-aligned to kArenaAlign by hand (offsets are multiples of
    // kArenaAlign, so every slot stays aligned too).
    const MemoryPlan* plan = nullptr;
    char* arena = nullptr;
    if (useMemPlan_) {
        plan = &memoryPlan(force_f32);
        const auto floats = static_cast<std::size_t>(
            plan->arenaBytes / 4 + kArenaAlign / 4 + 1);
        if (arenaStore_.size() < floats)
            arenaStore_.resize(floats);
        const auto addr =
            reinterpret_cast<std::uintptr_t>(arenaStore_.data());
        arena = reinterpret_cast<char*>(
            (addr + kArenaAlign - 1) / kArenaAlign * kArenaAlign);
        stats_.usedMemoryPlan = true;
        stats_.arenaBytes = plan->arenaBytes;
    }
    auto slotF32 = [&](const Node& n) {
        const MemSlot& s = plan->slots[static_cast<std::size_t>(n.id)];
        return std::span<float>(
            reinterpret_cast<float*>(arena + s.offset),
            static_cast<std::size_t>(core::numElements(n.outShape)));
    };
    auto slotI8 = [&](const Node& n) {
        const MemSlot& s = plan->slots[static_cast<std::size_t>(n.id)];
        return std::span<std::int8_t>(
            reinterpret_cast<std::int8_t*>(arena + s.offset),
            static_cast<std::size_t>(core::numElements(n.outShape)));
    };

    obs::Tracer* const tracer =
        obs::kEnabledAtBuild ? tracer_ : nullptr;
    obs::ScopedSpan run_span(tracer, "interpreter.run(" +
                                 graph_.name() + ")", "run");
    auto traceNode = [&](const Node& n, const core::Tensor& result) {
        if (!tracer)
            return;
        const auto idx = static_cast<std::size_t>(n.id);
        const double ms = idx < nodeMs_.size() ? nodeMs_[idx] : 0.0;
        const obs::SpanId s =
            tracer->recordSpan(n.name, "exec", ms);
        tracer->argText(s, "op", opKindName(n.kind));
        tracer->argNum(s, "flops",
                       2.0 * static_cast<double>(n.macs()));
        double bytes = n.outputBytes() + n.paramBytes();
        for (NodeId in : n.inputs)
            bytes += graph_.node(in).outputBytes();
        tracer->argNum(s, "bytes", bytes);
        tracer->argNum(s, "out_bytes",
                       static_cast<double>(result.byteSize()));
        if (plan)
            tracer->argNum(s, "arena_offset",
                           static_cast<double>(plan->slots[idx].offset));
    };
    auto observeRanges = [&](const Node& n, const core::Tensor& t) {
        if (!ranges)
            return;
        auto& r = (*ranges)[static_cast<std::size_t>(n.id)];
        if (t.dtype() == core::DType::kI8) {
            // Streaming: dequantize value-by-value instead of
            // materializing a full fp32 copy of the activation.
            core::observeMinMaxInt8(t.qdata(), t.quantParams(),
                                    r.first, r.second);
        } else {
            // fp16 is stored as (rounded) fp32, so direct access
            // observes exactly what a toF32() copy would.
            core::observeMinMax(t.data(), r.first, r.second);
        }
    };
    auto refcount = graph_.consumerCounts();
    // Outputs stay live to the end.
    for (NodeId id : graph_.outputIds())
        ++refcount[static_cast<std::size_t>(id)];

    std::vector<std::optional<core::Tensor>> values(
        static_cast<std::size_t>(graph_.numNodes()));
    std::int64_t live_bytes = 0;

    auto retain = [&](NodeId id, core::Tensor t) {
        live_bytes += t.byteSize();
        stats_.peakActivationBytes =
            std::max(stats_.peakActivationBytes, live_bytes);
        values[static_cast<std::size_t>(id)] = std::move(t);
    };
    auto release = [&](NodeId id) {
        auto& slot = values[static_cast<std::size_t>(id)];
        if (slot && --refcount[static_cast<std::size_t>(id)] == 0) {
            live_bytes -= slot->byteSize();
            slot.reset();
        }
    };

    for (const auto& n : graph_.nodes()) {
        if (n.kind == OpKind::kInput) {
            const auto it = std::find(input_ids.begin(), input_ids.end(),
                                      n.id);
            EB_CHECK(it != input_ids.end(),
                     "run: " << nodeDesc(n) << " not registered as an "
                             << "input");
            const auto idx = static_cast<std::size_t>(
                it - input_ids.begin());
            core::Tensor t = inputs[idx].toF32();
            EB_CHECK(core::sameShape(t.shape(), n.outShape),
                     "run: " << nodeDesc(n) << ": fed shape "
                             << core::shapeToString(t.shape())
                             << " != declared "
                             << core::shapeToString(n.outShape));
            if (!force_f32 && n.dtype == core::DType::kI8 && n.outQuant)
                t = t.toInt8(*n.outQuant);
            if (plan) {
                // Copy the (converted) input into its arena slot so
                // downstream in-place chains may reuse the block.
                if (t.dtype() == core::DType::kI8) {
                    auto dst = slotI8(n);
                    std::memcpy(dst.data(), t.qdata().data(),
                                dst.size());
                    t = core::Tensor::borrowI8(n.outShape, dst,
                                               t.quantParams());
                } else {
                    auto dst = slotF32(n);
                    std::memcpy(dst.data(), t.data().data(),
                                dst.size() * sizeof(float));
                    t = core::Tensor::borrowF32(n.outShape, dst);
                }
            }
            observeRanges(n, t);
            retain(n.id, std::move(t));
            ++stats_.nodesExecuted;
            traceNode(n, *values[static_cast<std::size_t>(n.id)]);
            continue;
        }

        std::vector<const core::Tensor*> ins;
        ins.reserve(n.inputs.size());
        for (NodeId in : n.inputs) {
            const auto& slot = values[static_cast<std::size_t>(in)];
            EB_CHECK(slot.has_value(),
                     "run: value of " << nodeDesc(graph_.node(in))
                                      << " consumed by " << nodeDesc(n)
                                      << " was freed too early");
            ins.push_back(&*slot);
        }

        const MemSlot* ms = plan
            ? &plan->slots[static_cast<std::size_t>(n.id)]
            : nullptr;

        if (ms && ms->inplaceSrc >= 0) {
            // In-place node: mutate the producer's tensor instead of
            // allocating. Accounting replays the legacy order (retain
            // the result, then release the inputs) so live-byte
            // tracking matches the refcount path exactly.
            const NodeId src = ms->inplaceSrc;
            std::size_t src_idx = 0;
            while (n.inputs[src_idx] != src)
                ++src_idx;
            auto& src_slot = values[static_cast<std::size_t>(src)];
            core::Tensor t = std::move(*src_slot);
            const std::int64_t src_bytes = t.byteSize();
            execNodeInPlace(n, t, ins, src_idx);
            observeRanges(n, t);
            retain(n.id, std::move(t));
            ++stats_.nodesExecuted;
            traceNode(n, *values[static_cast<std::size_t>(n.id)]);
            bool src_done = false;
            for (NodeId in : n.inputs) {
                if (in == src && !src_done) {
                    src_done = true;
                    const auto i = static_cast<std::size_t>(in);
                    --refcount[i];
                    EB_CHECK(refcount[i] == 0,
                             "run: in-place source "
                                 << nodeDesc(graph_.node(in))
                                 << " mutated by " << nodeDesc(n)
                                 << " is still referenced");
                    live_bytes -= src_bytes;
                    src_slot.reset();
                } else {
                    release(in);
                }
            }
            continue;
        }

        core::Tensor result;
        {
            SinkDisarm disarm_on_exit;
            if (ms) {
                if (ms->i8)
                    core::OutputSink::armI8(n.outShape, slotI8(n),
                                            /*clear=*/false);
                else
                    core::OutputSink::armF32(n.outShape, slotF32(n),
                                             needsZeroFill(n.kind));
            }
            result = execNode(n, ins, force_f32);
        }
        observeRanges(n, result);
        retain(n.id, std::move(result));
        ++stats_.nodesExecuted;
        traceNode(n, *values[static_cast<std::size_t>(n.id)]);
        for (NodeId in : n.inputs)
            release(in);
    }

    if (tracer) {
        tracer->argNum(run_span.id(), "peak_activation_bytes",
                       static_cast<double>(stats_.peakActivationBytes));
        if (plan) {
            tracer->argNum(run_span.id(), "arena_bytes",
                           static_cast<double>(plan->arenaBytes));
            tracer->argNum(run_span.id(), "sum_alloc_bytes",
                           static_cast<double>(plan->sumAllocBytes));
        }
    }

    std::vector<core::Tensor> outputs;
    outputs.reserve(graph_.outputIds().size());
    for (NodeId id : graph_.outputIds()) {
        auto& slot = values[static_cast<std::size_t>(id)];
        EB_CHECK(slot.has_value(),
                 "run: output value of " << nodeDesc(graph_.node(id))
                                         << " missing");
        // Move the value out when this emission exhausts its refcount
        // and it owns its storage; arena-borrowed values must be
        // deep-copied so the returned tensors outlive the arena.
        if (--refcount[static_cast<std::size_t>(id)] == 0 &&
            !slot->borrowed()) {
            outputs.push_back(std::move(*slot));
            slot.reset();
        } else {
            outputs.push_back(*slot);
        }
    }
    return outputs;
}

void
Interpreter::execNodeInPlace(const Node& n, core::Tensor& t,
                             const std::vector<const core::Tensor*>& ins,
                             std::size_t src_idx)
{
    if (t.dtype() == core::DType::kI8) {
        EB_CHECK(n.kind == OpKind::kActivation,
                 "execNodeInPlace: " << nodeDesc(n)
                     << " is not a legal int8 in-place op");
        if (n.attrs.activation == ActKind::kRelu) {
            core::reluInt8InPlace(t);
            return;
        }
        if (n.attrs.activation == ActKind::kRelu6) {
            core::relu6Int8InPlace(t);
            return;
        }
        throw InternalError("execNodeInPlace: " + nodeDesc(n) +
                            ": bad int8 activation");
    }
    switch (n.kind) {
      case OpKind::kActivation:
        switch (n.attrs.activation) {
          case ActKind::kRelu: core::reluInPlace(t); return;
          case ActKind::kRelu6: core::relu6InPlace(t); return;
          case ActKind::kLeakyRelu:
            core::leakyReluInPlace(t, n.attrs.leakySlope);
            return;
          case ActKind::kSigmoid: core::sigmoidInPlace(t); return;
          case ActKind::kTanh: core::tanhInPlace(t); return;
          case ActKind::kNone: break;
        }
        break;
      case OpKind::kBatchNorm:
        core::batchNormInPlace(t, paramF32(n, 0), paramF32(n, 1),
                               paramF32(n, 2), paramF32(n, 3),
                               n.attrs.bnEpsilon);
        return;
      case OpKind::kAdd:
        core::addElementwiseInPlace(t, *ins[src_idx == 0 ? 1 : 0],
                                    /*dst_is_lhs=*/src_idx == 0);
        return;
      default:
        break;
    }
    throw InternalError("execNodeInPlace: " + nodeDesc(n) +
                        ": op not whitelisted");
}

core::Tensor
Interpreter::execNode(const Node& n,
                      const std::vector<const core::Tensor*>& ins,
                      bool force_f32)
{
    const bool quantized = !force_f32 && n.dtype == core::DType::kI8 &&
        n.outQuant.has_value();

    if (quantized) {
        // Real INT8 paths for the ops that have them.
        switch (n.kind) {
          case OpKind::kConv2d:
          case OpKind::kFusedConvBnAct: {
            // Point at the input directly when it is already int8;
            // copying it (as the old ternary did) duplicated every
            // activation once per conv.
            const core::Tensor* input = ins[0];
            core::Tensor conv_tmp;
            if (input->dtype() != core::DType::kI8) {
                conv_tmp = input->toInt8();
                input = &conv_tmp;
            }
            const core::Tensor& w = paramI8(n, 0);
            const core::Tensor& bias =
                n.params.size() > 1 ? paramF32(n, 1) : emptyTensor();
            auto g = n.attrs.conv2d;
            // ReLU-family activations fuse into the requantization
            // clamp (int8ActBounds): bit-identical to the standalone
            // clamp kernels, minus a full extra pass over the output.
            core::EpilogueAct act = core::EpilogueAct::kNone;
            if (n.kind == OpKind::kFusedConvBnAct) {
                if (n.attrs.activation == ActKind::kRelu)
                    act = core::EpilogueAct::kRelu;
                else if (n.attrs.activation == ActKind::kRelu6)
                    act = core::EpilogueAct::kRelu6;
            }
            core::Tensor out = core::conv2dInt8Packed(
                *input, w, packedConvI8(n), bias, g, *n.outQuant, act);
            if (n.kind == OpKind::kFusedConvBnAct &&
                n.attrs.activation != ActKind::kNone &&
                n.attrs.activation != ActKind::kRelu &&
                n.attrs.activation != ActKind::kRelu6)
                out = core::relu(out.toF32()).toInt8(*n.outQuant);
            return out;
          }
          case OpKind::kDense: {
            const core::Tensor* input = ins[0];
            core::Tensor dense_tmp;
            if (input->dtype() != core::DType::kI8) {
                dense_tmp = input->toInt8();
                input = &dense_tmp;
            }
            const core::Tensor& w = paramI8(n, 0);
            const core::Tensor& bias =
                n.params.size() > 1 ? paramF32(n, 1) : emptyTensor();
            return core::denseInt8Packed(*input, w, packedDenseI8(n),
                                         bias, n.attrs.dense,
                                         *n.outQuant);
          }
          case OpKind::kActivation:
            if (ins[0]->dtype() == core::DType::kI8) {
                if (n.attrs.activation == ActKind::kRelu)
                    return core::reluInt8(*ins[0]);
                if (n.attrs.activation == ActKind::kRelu6)
                    return core::relu6Int8(*ins[0]);
            }
            break; // fall through to dequant path
          case OpKind::kAdd:
            if (ins[0]->dtype() == core::DType::kI8 &&
                ins[1]->dtype() == core::DType::kI8) {
                return core::addInt8(*ins[0], *ins[1], *n.outQuant);
            }
            break;
          default:
            break; // dequant fallback below
        }
        // Fallback: dequantize -> fp32 op -> requantize.
    }

    // Inputs already in fp32 are borrowed in place; only f16/int8
    // activations get a converted temporary. (The old code round-
    // tripped every input through toF32(), copying fp32 tensors too.)
    std::vector<core::Tensor> converted;
    converted.reserve(ins.size());
    std::vector<const core::Tensor*> f32_ins;
    f32_ins.reserve(ins.size());
    for (const auto* t : ins) {
        if (t->dtype() == core::DType::kF32) {
            f32_ins.push_back(t);
        } else {
            converted.push_back(t->toF32());
            f32_ins.push_back(&converted.back());
        }
    }
    if (quantized)
        return execNodeF32(n, f32_ins).toInt8(*n.outQuant);
    core::Tensor out = execNodeF32(n, f32_ins);
    if (!force_f32 && n.dtype == core::DType::kF16)
        out.convertToF16InPlace();
    return out;
}

core::Tensor
Interpreter::execNodeF32(const Node& n,
                         const std::vector<const core::Tensor*>& ins)
{
    switch (n.kind) {
      case OpKind::kConv2d:
        return core::conv2dPacked(*ins[0], paramF32(n, 0),
                                  packedConv(n),
                                  n.params.size() > 1 ? paramF32(n, 1)
                                                      : emptyTensor(),
                                  n.attrs.conv2d);
      case OpKind::kFusedConvBnAct: {
        // ReLU-family activations ride the engine's fused epilogue
        // (bias + activation applied while the output tile is register
        // resident — bit-identical to the in-place kernels); the rest
        // run in place after the conv, which keeps an arena-borrowed
        // conv result in its slot.
        core::EpilogueAct act = core::EpilogueAct::kNone;
        if (n.attrs.activation == ActKind::kRelu)
            act = core::EpilogueAct::kRelu;
        else if (n.attrs.activation == ActKind::kRelu6)
            act = core::EpilogueAct::kRelu6;
        core::Tensor out =
            core::conv2dPacked(*ins[0], paramF32(n, 0), packedConv(n),
                               n.params.size() > 1 ? paramF32(n, 1)
                                                   : emptyTensor(),
                               n.attrs.conv2d, act);
        switch (n.attrs.activation) {
          case ActKind::kNone:
          case ActKind::kRelu:
          case ActKind::kRelu6: return out;
          case ActKind::kLeakyRelu:
            core::leakyReluInPlace(out, n.attrs.leakySlope);
            return out;
          case ActKind::kSigmoid: core::sigmoidInPlace(out); return out;
          case ActKind::kTanh: core::tanhInPlace(out); return out;
        }
        throw InternalError("bad fused activation");
      }
      case OpKind::kConv3d:
        return core::conv3d(*ins[0], paramF32(n, 0),
                            n.params.size() > 1 ? paramF32(n, 1)
                                                : emptyTensor(),
                            n.attrs.conv3d);
      case OpKind::kDense:
        return core::densePacked(*ins[0], packedDense(n),
                                 n.params.size() > 1 ? paramF32(n, 1)
                                                     : emptyTensor(),
                                 n.attrs.dense);
      case OpKind::kBatchNorm:
        return core::batchNorm(*ins[0], paramF32(n, 0),
                               paramF32(n, 1), paramF32(n, 2),
                               paramF32(n, 3), n.attrs.bnEpsilon);
      case OpKind::kActivation:
        switch (n.attrs.activation) {
          case ActKind::kRelu: return core::relu(*ins[0]);
          case ActKind::kRelu6: return core::relu6(*ins[0]);
          case ActKind::kLeakyRelu:
            return core::leakyRelu(*ins[0], n.attrs.leakySlope);
          case ActKind::kSigmoid: return core::sigmoid(*ins[0]);
          case ActKind::kTanh: return core::tanhAct(*ins[0]);
          case ActKind::kNone: break;
        }
        throw InternalError("bad activation kind");
      case OpKind::kSoftmax:
        return core::softmax(*ins[0]);
      case OpKind::kMaxPool2d:
        return core::maxPool2d(*ins[0], n.attrs.pool2d);
      case OpKind::kAvgPool2d:
        return core::avgPool2d(*ins[0], n.attrs.pool2d);
      case OpKind::kMaxPool3d:
        return core::maxPool3d(*ins[0], n.attrs.pool3d);
      case OpKind::kGlobalAvgPool:
        return core::globalAvgPool(*ins[0]);
      case OpKind::kAdd:
        return core::addElementwise(*ins[0], *ins[1]);
      case OpKind::kConcat:
        return core::concatChannels(ins);
      case OpKind::kFlatten:
        return core::flatten(*ins[0]);
      case OpKind::kLstm:
        return core::lstmForward(*ins[0], packedRnn(n),
                                 paramF32(n, 2), n.attrs.rnn);
      case OpKind::kGru:
        return core::gruForward(*ins[0], packedRnn(n),
                                paramF32(n, 2), n.attrs.rnn);
      case OpKind::kChannelShuffle: {
        const auto& s = ins[0]->shape();
        const std::int64_t batch = s[0], c = s[1], hw = s[2] * s[3];
        const std::int64_t g_count = n.attrs.conv2d.groups;
        const std::int64_t per = c / g_count;
        core::Tensor out(s);
        auto src = ins[0]->data();
        auto dst = out.data();
        for (std::int64_t b = 0; b < batch; ++b)
            for (std::int64_t ch = 0; ch < c; ++ch) {
                // Channel ch comes from group (ch / per) position
                // (ch % per); the shuffle interleaves them.
                const std::int64_t out_ch =
                    (ch % per) * g_count + ch / per;
                std::copy_n(src.data() + (b * c + ch) * hw, hw,
                            dst.data() + (b * c + out_ch) * hw);
            }
        return out;
      }
      case OpKind::kSelectTimestep: {
        const auto& s = ins[0]->shape();
        const std::int64_t batch = s[0], steps = s[1], f = s[2];
        core::Tensor out(core::Shape{batch, f});
        auto src = ins[0]->data();
        auto dst = out.data();
        for (std::int64_t b = 0; b < batch; ++b)
            std::copy_n(src.data() +
                            (b * steps + n.attrs.timestep) * f,
                        f, dst.data() + b * f);
        return out;
      }
      case OpKind::kReshape: {
        auto d = ins[0]->data();
        return core::Tensor(n.outShape,
                            std::vector<float>(d.begin(), d.end()));
      }
      case OpKind::kConcatLast:
        return core::concatLastDim(ins);
      case OpKind::kPadSpatial:
        return core::padSpatial(*ins[0], n.attrs.pads[0],
                                n.attrs.pads[1], n.attrs.pads[2],
                                n.attrs.pads[3]);
      case OpKind::kUpsample:
        return core::upsampleNearest(*ins[0], n.attrs.upsampleFactor);
      case OpKind::kDetectPostprocess:
        return detectPostprocess(*ins[0], n);
      case OpKind::kYoloDetect:
        return yoloDetect(*ins[0], n);
      case OpKind::kInput:
        break;
    }
    throw InternalError("execNodeF32: unhandled op kind");
}

} // namespace graph
} // namespace edgebench
