#include "edgebench/graph/serialize.hh"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace graph
{

namespace
{

constexpr std::array<OpKind, 24> kAllKinds = {
    OpKind::kInput,        OpKind::kConv2d,
    OpKind::kConv3d,       OpKind::kDense,
    OpKind::kBatchNorm,    OpKind::kActivation,
    OpKind::kSoftmax,      OpKind::kMaxPool2d,
    OpKind::kAvgPool2d,    OpKind::kMaxPool3d,
    OpKind::kGlobalAvgPool, OpKind::kAdd,
    OpKind::kConcat,       OpKind::kFlatten,
    OpKind::kReshape,      OpKind::kConcatLast,
    OpKind::kPadSpatial,   OpKind::kUpsample,
    OpKind::kFusedConvBnAct, OpKind::kLstm,
    OpKind::kGru,          OpKind::kSelectTimestep,
    OpKind::kChannelShuffle, OpKind::kDetectPostprocess,
};

constexpr std::array<ActKind, 6> kAllActs = {
    ActKind::kNone,      ActKind::kRelu,  ActKind::kRelu6,
    ActKind::kLeakyRelu, ActKind::kSigmoid, ActKind::kTanh,
};

constexpr std::array<core::DType, 5> kAllDtypes = {
    core::DType::kF32, core::DType::kF16, core::DType::kI8,
    core::DType::kI32, core::DType::kBin1,
};

OpKind
opKindFromName(const std::string& name)
{
    for (auto k : kAllKinds)
        if (opKindName(k) == name)
            return k;
    if (name == "yolo_detect")
        return OpKind::kYoloDetect;
    throw InvalidArgumentError("serialize: unknown op kind '" + name +
                               "'");
}

ActKind
actKindFromName(const std::string& name)
{
    for (auto a : kAllActs)
        if (actKindName(a) == name)
            return a;
    throw InvalidArgumentError("serialize: unknown activation '" +
                               name + "'");
}

core::DType
dtypeFromName(const std::string& name)
{
    for (auto d : kAllDtypes)
        if (core::dtypeName(d) == name)
            return d;
    throw InvalidArgumentError("serialize: unknown dtype '" + name +
                               "'");
}

/** Print a shape / id list as v1,v2,v3 (empty string when empty). */
template <typename Seq>
std::string
joinInts(const Seq& seq)
{
    std::ostringstream oss;
    bool first = true;
    for (auto v : seq) {
        if (!first)
            oss << ",";
        oss << v;
        first = false;
    }
    return oss.str();
}

std::vector<std::int64_t>
splitInts(const std::string& text)
{
    std::vector<std::int64_t> out;
    std::string token;
    std::istringstream iss(text);
    while (std::getline(iss, token, ','))
        if (!token.empty())
            out.push_back(std::stoll(token));
    return out;
}

} // namespace

void
writeGraphText(const Graph& g, std::ostream& os)
{
    os << "EBG v1\n";
    os << "name " << g.name() << "\n";
    os << "input_desc " << g.inputDescription() << "\n";
    for (const auto& n : g.nodes()) {
        os << "node " << n.id << " " << opKindName(n.kind)
           << " dtype=" << core::dtypeName(n.dtype)
           << " shape=" << joinInts(n.outShape)
           << " in=" << joinInts(n.inputs) << " name=" << n.name
           << "\n";
        const auto& a = n.attrs;
        switch (n.kind) {
          case OpKind::kConv2d:
          case OpKind::kFusedConvBnAct:
            os << " attr conv2d " << a.conv2d.n << " " << a.conv2d.inC
               << " " << a.conv2d.inH << " " << a.conv2d.inW << " "
               << a.conv2d.outC << " " << a.conv2d.kH << " "
               << a.conv2d.kW << " " << a.conv2d.strideH << " "
               << a.conv2d.strideW << " " << a.conv2d.padH << " "
               << a.conv2d.padW << " " << a.conv2d.dilH << " "
               << a.conv2d.dilW << " " << a.conv2d.groups << "\n";
            if (n.kind == OpKind::kFusedConvBnAct) {
                os << " attr act " << actKindName(a.activation)
                   << " " << a.leakySlope << "\n";
            }
            break;
          case OpKind::kConv3d:
            os << " attr conv3d " << a.conv3d.n << " " << a.conv3d.inC
               << " " << a.conv3d.inD << " " << a.conv3d.inH << " "
               << a.conv3d.inW << " " << a.conv3d.outC << " "
               << a.conv3d.kD << " " << a.conv3d.kH << " "
               << a.conv3d.kW << " " << a.conv3d.strideD << " "
               << a.conv3d.strideH << " " << a.conv3d.strideW << " "
               << a.conv3d.padD << " " << a.conv3d.padH << " "
               << a.conv3d.padW << "\n";
            break;
          case OpKind::kDense:
            os << " attr dense " << a.dense.batch << " "
               << a.dense.inFeatures << " " << a.dense.outFeatures
               << "\n";
            break;
          case OpKind::kLstm:
          case OpKind::kGru:
            os << " attr rnn " << a.rnn.batch << " " << a.rnn.seqLen
               << " " << a.rnn.inputSize << " " << a.rnn.hiddenSize
               << " " << a.rnn.gates << "\n";
            break;
          case OpKind::kBatchNorm:
            os << " attr bn_eps " << a.bnEpsilon << "\n";
            break;
          case OpKind::kActivation:
            os << " attr act " << actKindName(a.activation) << " "
               << a.leakySlope << "\n";
            break;
          case OpKind::kMaxPool2d:
          case OpKind::kAvgPool2d:
            os << " attr pool2d " << a.pool2d.n << " " << a.pool2d.c
               << " " << a.pool2d.inH << " " << a.pool2d.inW << " "
               << a.pool2d.kH << " " << a.pool2d.kW << " "
               << a.pool2d.strideH << " " << a.pool2d.strideW << " "
               << a.pool2d.padH << " " << a.pool2d.padW << " "
               << (a.pool2d.ceilMode ? 1 : 0) << "\n";
            break;
          case OpKind::kMaxPool3d:
            os << " attr pool3d " << a.pool3d.n << " " << a.pool3d.c
               << " " << a.pool3d.inD << " " << a.pool3d.inH << " "
               << a.pool3d.inW << " " << a.pool3d.kD << " "
               << a.pool3d.kH << " " << a.pool3d.kW << " "
               << a.pool3d.strideD << " " << a.pool3d.strideH << " "
               << a.pool3d.strideW << " " << a.pool3d.padD << " "
               << a.pool3d.padH << " " << a.pool3d.padW << "\n";
            break;
          case OpKind::kPadSpatial:
            os << " attr pads " << a.pads[0] << " " << a.pads[1]
               << " " << a.pads[2] << " " << a.pads[3] << "\n";
            break;
          case OpKind::kUpsample:
            os << " attr upsample " << a.upsampleFactor << "\n";
            break;
          case OpKind::kSelectTimestep:
            os << " attr timestep " << a.timestep << "\n";
            break;
          case OpKind::kChannelShuffle:
            os << " attr groups " << a.conv2d.groups << "\n";
            break;
          case OpKind::kDetectPostprocess:
            os << " attr detect " << a.numClasses << " "
               << a.scoreThreshold << " " << a.iouThreshold << "\n";
            break;
          case OpKind::kYoloDetect:
            os << " attr yolo " << a.numClasses << " " << a.numAnchors
               << "\n";
            break;
          default:
            break;
        }
        for (const auto& ps : n.paramShapes)
            os << " param " << joinInts(ps) << "\n";
        if (n.weightSparsity > 0.0)
            os << " attr sparsity " << n.weightSparsity << "\n";
        if (n.outQuant) {
            os << " attr outquant " << n.outQuant->scale << " "
               << n.outQuant->zeroPoint << "\n";
        }
    }
    os << "inputs " << joinInts(g.inputIds()) << "\n";
    os << "outputs " << joinInts(g.outputIds()) << "\n";
}

Graph
readGraphText(std::istream& is)
{
    std::string line;
    EB_CHECK(std::getline(is, line) && line == "EBG v1",
             "serialize: bad magic, expected 'EBG v1'");

    Graph g;
    Node* current = nullptr;
    std::vector<Node> pending; // nodes staged before appendRaw

    auto flush = [&]() {
        for (auto& n : pending)
            g.appendRaw(std::move(n));
        pending.clear();
        current = nullptr;
    };

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string tag;
        iss >> tag;
        if (tag == "name") {
            std::string rest;
            std::getline(iss, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            g.setName(rest);
        } else if (tag == "input_desc") {
            std::string rest;
            std::getline(iss, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            g.setInputDescription(rest);
        } else if (tag == "node") {
            Node n;
            std::int64_t id;
            std::string kind, field;
            iss >> id >> kind;
            n.kind = opKindFromName(kind);
            while (iss >> field) {
                const auto eq = field.find('=');
                EB_CHECK(eq != std::string::npos,
                         "serialize: bad node field '" << field
                                                       << "'");
                const std::string key = field.substr(0, eq);
                const std::string val = field.substr(eq + 1);
                if (key == "dtype") {
                    n.dtype = dtypeFromName(val);
                } else if (key == "shape") {
                    n.outShape = splitInts(val);
                } else if (key == "in") {
                    for (auto v : splitInts(val))
                        n.inputs.push_back(
                            static_cast<NodeId>(v));
                } else if (key == "name") {
                    // The name may contain spaces: take the rest.
                    std::string rest;
                    std::getline(iss, rest);
                    n.name = val + rest;
                } else {
                    throw InvalidArgumentError(
                        "serialize: unknown node field '" + key +
                        "'");
                }
            }
            pending.push_back(std::move(n));
            current = &pending.back();
        } else if (tag == "attr") {
            EB_CHECK(current != nullptr,
                     "serialize: attr before any node");
            std::string which;
            iss >> which;
            auto& a = current->attrs;
            if (which == "conv2d") {
                auto& c = a.conv2d;
                iss >> c.n >> c.inC >> c.inH >> c.inW >> c.outC >>
                    c.kH >> c.kW >> c.strideH >> c.strideW >> c.padH >>
                    c.padW >> c.dilH >> c.dilW >> c.groups;
            } else if (which == "conv3d") {
                auto& c = a.conv3d;
                iss >> c.n >> c.inC >> c.inD >> c.inH >> c.inW >>
                    c.outC >> c.kD >> c.kH >> c.kW >> c.strideD >>
                    c.strideH >> c.strideW >> c.padD >> c.padH >>
                    c.padW;
            } else if (which == "dense") {
                iss >> a.dense.batch >> a.dense.inFeatures >>
                    a.dense.outFeatures;
            } else if (which == "rnn") {
                iss >> a.rnn.batch >> a.rnn.seqLen >>
                    a.rnn.inputSize >> a.rnn.hiddenSize >>
                    a.rnn.gates;
            } else if (which == "bn_eps") {
                iss >> a.bnEpsilon;
            } else if (which == "act") {
                std::string act;
                iss >> act >> a.leakySlope;
                a.activation = actKindFromName(act);
            } else if (which == "pool2d") {
                auto& p = a.pool2d;
                int ceil = 0;
                iss >> p.n >> p.c >> p.inH >> p.inW >> p.kH >> p.kW >>
                    p.strideH >> p.strideW >> p.padH >> p.padW >> ceil;
                p.ceilMode = (ceil != 0);
            } else if (which == "pool3d") {
                auto& p = a.pool3d;
                iss >> p.n >> p.c >> p.inD >> p.inH >> p.inW >> p.kD >>
                    p.kH >> p.kW >> p.strideD >> p.strideH >>
                    p.strideW >> p.padD >> p.padH >> p.padW;
            } else if (which == "pads") {
                iss >> a.pads[0] >> a.pads[1] >> a.pads[2] >>
                    a.pads[3];
            } else if (which == "upsample") {
                iss >> a.upsampleFactor;
            } else if (which == "timestep") {
                iss >> a.timestep;
            } else if (which == "groups") {
                iss >> a.conv2d.groups;
            } else if (which == "detect") {
                iss >> a.numClasses >> a.scoreThreshold >>
                    a.iouThreshold;
            } else if (which == "yolo") {
                iss >> a.numClasses >> a.numAnchors;
            } else if (which == "sparsity") {
                iss >> current->weightSparsity;
            } else if (which == "outquant") {
                core::QuantParams qp;
                iss >> qp.scale >> qp.zeroPoint;
                current->outQuant = qp;
            } else {
                throw InvalidArgumentError(
                    "serialize: unknown attr '" + which + "'");
            }
        } else if (tag == "param") {
            EB_CHECK(current != nullptr,
                     "serialize: param before any node");
            std::string val;
            iss >> val;
            current->paramShapes.push_back(splitInts(val));
        } else if (tag == "inputs") {
            flush();
            std::string val;
            iss >> val;
            for (auto v : splitInts(val))
                g.markInput(static_cast<NodeId>(v));
        } else if (tag == "outputs") {
            flush();
            std::string val;
            iss >> val;
            for (auto v : splitInts(val))
                g.markOutput(static_cast<NodeId>(v));
        } else {
            throw InvalidArgumentError("serialize: unknown tag '" +
                                       tag + "'");
        }
    }
    flush();
    EB_CHECK(g.numNodes() > 0, "serialize: empty graph");
    return g;
}

std::string
graphToString(const Graph& g)
{
    std::ostringstream oss;
    writeGraphText(g, oss);
    return oss.str();
}

Graph
graphFromString(const std::string& text)
{
    std::istringstream iss(text);
    return readGraphText(iss);
}

} // namespace graph
} // namespace edgebench
