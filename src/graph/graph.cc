#include "edgebench/graph/graph.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace graph
{

namespace
{

/** Default maximum detections emitted by the SSD postprocess op. */
constexpr std::int64_t kMaxDetections = 100;

} // namespace

std::int64_t
Node::macs() const
{
    switch (kind) {
      case OpKind::kConv2d:
      case OpKind::kFusedConvBnAct:
        return attrs.conv2d.macs();
      case OpKind::kConv3d:
        return attrs.conv3d.macs();
      case OpKind::kDense:
        return attrs.dense.macs();
      case OpKind::kLstm:
      case OpKind::kGru:
        return attrs.rnn.macs();
      case OpKind::kBatchNorm:
        // One scale+shift per element.
        return outputElems();
      default:
        return 0;
    }
}

std::int64_t
Node::paramElems() const
{
    std::int64_t n = 0;
    for (const auto& s : paramShapes)
        n += core::numElements(s);
    return n;
}

double
Node::paramBytes() const
{
    return static_cast<double>(paramElems()) * core::dtypeBytes(dtype);
}

std::int64_t
Node::outputElems() const
{
    return core::numElements(outShape);
}

double
Node::outputBytes() const
{
    return static_cast<double>(outputElems()) * core::dtypeBytes(dtype);
}

const Node&
Graph::node(NodeId id) const
{
    EB_CHECK(id >= 0 && id < numNodes(), "bad node id " << id);
    return nodes_[static_cast<std::size_t>(id)];
}

Node&
Graph::node(NodeId id)
{
    EB_CHECK(id >= 0 && id < numNodes(), "bad node id " << id);
    return nodes_[static_cast<std::size_t>(id)];
}

NodeId
Graph::addNode(Node n)
{
    n.id = static_cast<NodeId>(nodes_.size());
    if (n.name.empty())
        n.name = opKindName(n.kind) + "_" + std::to_string(n.id);
    for (NodeId in : n.inputs) {
        EB_CHECK(in >= 0 && in < n.id,
                 "node " << n.name << " references invalid input " << in);
    }
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

const core::Shape&
Graph::inShape(NodeId id, const char* what) const
{
    EB_CHECK(id >= 0 && id < numNodes(),
             what << ": invalid input node id " << id);
    return nodes_[static_cast<std::size_t>(id)].outShape;
}

NodeId
Graph::addInput(core::Shape shape, const std::string& name)
{
    Node n;
    n.kind = OpKind::kInput;
    n.name = name;
    n.outShape = std::move(shape);
    const NodeId id = addNode(std::move(n));
    inputs_.push_back(id);
    if (inputDesc_.empty()) {
        const auto& s = nodes_.back().outShape;
        std::string d;
        for (std::size_t i = 2; i < s.size(); ++i) {
            if (!d.empty())
                d += "x";
            d += std::to_string(s[i]);
        }
        inputDesc_ = d;
    }
    return id;
}

NodeId
Graph::addConv2d(NodeId input, std::int64_t out_c, std::int64_t k_h,
                 std::int64_t k_w, std::int64_t stride, std::int64_t pad,
                 std::int64_t dilation, std::int64_t groups, bool bias,
                 const std::string& name)
{
    const auto& s = inShape(input, "addConv2d");
    EB_CHECK(s.size() == 4,
             "addConv2d(" << name << "): input must be rank 4, got "
                          << core::shapeToString(s));
    Node n;
    n.kind = OpKind::kConv2d;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.conv2d;
    g.n = s[0];
    g.inC = s[1];
    g.inH = s[2];
    g.inW = s[3];
    g.outC = out_c;
    g.kH = k_h;
    g.kW = k_w;
    g.strideH = g.strideW = stride;
    g.padH = g.padW = pad;
    g.dilH = g.dilW = dilation;
    g.groups = groups;
    g.validate();
    n.outShape = {g.n, g.outC, g.outH(), g.outW()};
    n.paramShapes = {{g.outC, g.inC / g.groups, g.kH, g.kW}};
    if (bias)
        n.paramShapes.push_back({g.outC});
    return addNode(std::move(n));
}

NodeId
Graph::addConv2dRect(NodeId input, std::int64_t out_c, std::int64_t k_h,
                     std::int64_t k_w, std::int64_t stride_h,
                     std::int64_t stride_w, std::int64_t pad_h,
                     std::int64_t pad_w, bool bias,
                     const std::string& name)
{
    const auto& s = inShape(input, "addConv2dRect");
    EB_CHECK(s.size() == 4,
             "addConv2dRect(" << name << "): input must be rank 4");
    Node n;
    n.kind = OpKind::kConv2d;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.conv2d;
    g.n = s[0];
    g.inC = s[1];
    g.inH = s[2];
    g.inW = s[3];
    g.outC = out_c;
    g.kH = k_h;
    g.kW = k_w;
    g.strideH = stride_h;
    g.strideW = stride_w;
    g.padH = pad_h;
    g.padW = pad_w;
    g.validate();
    n.outShape = {g.n, g.outC, g.outH(), g.outW()};
    n.paramShapes = {{g.outC, g.inC, g.kH, g.kW}};
    if (bias)
        n.paramShapes.push_back({g.outC});
    return addNode(std::move(n));
}

NodeId
Graph::addConv3d(NodeId input, std::int64_t out_c, std::int64_t k_d,
                 std::int64_t k_h, std::int64_t k_w,
                 std::int64_t stride_d, std::int64_t stride_hw,
                 std::int64_t pad_d, std::int64_t pad_hw, bool bias,
                 const std::string& name)
{
    const auto& s = inShape(input, "addConv3d");
    EB_CHECK(s.size() == 5,
             "addConv3d(" << name << "): input must be rank 5, got "
                          << core::shapeToString(s));
    Node n;
    n.kind = OpKind::kConv3d;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.conv3d;
    g.n = s[0];
    g.inC = s[1];
    g.inD = s[2];
    g.inH = s[3];
    g.inW = s[4];
    g.outC = out_c;
    g.kD = k_d;
    g.kH = k_h;
    g.kW = k_w;
    g.strideD = stride_d;
    g.strideH = g.strideW = stride_hw;
    g.padD = pad_d;
    g.padH = g.padW = pad_hw;
    g.validate();
    n.outShape = {g.n, g.outC, g.outD(), g.outH(), g.outW()};
    n.paramShapes = {{g.outC, g.inC, g.kD, g.kH, g.kW}};
    if (bias)
        n.paramShapes.push_back({g.outC});
    return addNode(std::move(n));
}

NodeId
Graph::addDense(NodeId input, std::int64_t out_features, bool bias,
                const std::string& name)
{
    const auto& s = inShape(input, "addDense");
    EB_CHECK(s.size() == 2,
             "addDense(" << name << "): input must be rank 2 "
                         << "(use addFlatten first), got "
                         << core::shapeToString(s));
    Node n;
    n.kind = OpKind::kDense;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.dense;
    g.batch = s[0];
    g.inFeatures = s[1];
    g.outFeatures = out_features;
    g.validate();
    n.outShape = {g.batch, g.outFeatures};
    n.paramShapes = {{g.outFeatures, g.inFeatures}};
    if (bias)
        n.paramShapes.push_back({g.outFeatures});
    return addNode(std::move(n));
}

NodeId
Graph::addBatchNorm(NodeId input, double epsilon, const std::string& name)
{
    const auto& s = inShape(input, "addBatchNorm");
    EB_CHECK(s.size() >= 2,
             "addBatchNorm(" << name << "): rank must be >= 2");
    Node n;
    n.kind = OpKind::kBatchNorm;
    n.name = name;
    n.inputs = {input};
    n.attrs.bnEpsilon = epsilon;
    n.outShape = s;
    const std::int64_t c = s[1];
    n.paramShapes = {{c}, {c}, {c}, {c}}; // gamma, beta, mean, var
    return addNode(std::move(n));
}

namespace
{

/** Shared construction for the two recurrent layer kinds. */
Node
makeRnnNode(OpKind kind, NodeId input, const core::Shape& s,
            std::int64_t hidden, std::int64_t gates,
            const std::string& name)
{
    Node n;
    n.kind = kind;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.rnn;
    g.batch = s[0];
    g.seqLen = s[1];
    g.inputSize = s[2];
    g.hiddenSize = hidden;
    g.gates = gates;
    g.validate();
    n.outShape = {g.batch, g.seqLen, g.hiddenSize};
    const std::int64_t gh = gates * hidden;
    n.paramShapes = {{gh, g.inputSize}, {gh, g.hiddenSize}, {gh}};
    return n;
}

} // namespace

NodeId
Graph::addLstm(NodeId input, std::int64_t hidden,
               const std::string& name)
{
    const auto& s = inShape(input, "addLstm");
    EB_CHECK(s.size() == 3,
             "addLstm(" << name << "): input must be [N, T, I], got "
                        << core::shapeToString(s));
    return addNode(makeRnnNode(OpKind::kLstm, input, s, hidden, 4,
                               name));
}

NodeId
Graph::addGru(NodeId input, std::int64_t hidden,
              const std::string& name)
{
    const auto& s = inShape(input, "addGru");
    EB_CHECK(s.size() == 3,
             "addGru(" << name << "): input must be [N, T, I], got "
                       << core::shapeToString(s));
    return addNode(makeRnnNode(OpKind::kGru, input, s, hidden, 3,
                               name));
}

NodeId
Graph::addSelectTimestep(NodeId input, std::int64_t t,
                         const std::string& name)
{
    const auto& s = inShape(input, "addSelectTimestep");
    EB_CHECK(s.size() == 3,
             "addSelectTimestep: input must be [N, T, F]");
    const std::int64_t steps = s[1];
    // Negative indices count from the end (Python-style).
    const std::int64_t resolved = t < 0 ? steps + t : t;
    EB_CHECK(resolved >= 0 && resolved < steps,
             "addSelectTimestep(" << name << "): t " << t
                                  << " outside [0, " << steps << ")");
    Node n;
    n.kind = OpKind::kSelectTimestep;
    n.name = name;
    n.inputs = {input};
    n.attrs.timestep = resolved;
    n.outShape = {s[0], s[2]};
    return addNode(std::move(n));
}

NodeId
Graph::addChannelShuffle(NodeId input, std::int64_t groups,
                         const std::string& name)
{
    const auto& s = inShape(input, "addChannelShuffle");
    EB_CHECK(s.size() == 4, "addChannelShuffle: input must be rank 4");
    EB_CHECK(groups > 0 && s[1] % groups == 0,
             "addChannelShuffle(" << name << "): channels " << s[1]
                                  << " not divisible by groups "
                                  << groups);
    Node n;
    n.kind = OpKind::kChannelShuffle;
    n.name = name;
    n.inputs = {input};
    n.attrs.conv2d.groups = groups; // reuse the groups slot
    n.outShape = s;
    return addNode(std::move(n));
}

NodeId
Graph::addActivation(NodeId input, ActKind act, const std::string& name)
{
    EB_CHECK(act != ActKind::kNone, "addActivation: kNone is not an op");
    Node n;
    n.kind = OpKind::kActivation;
    n.name = name;
    n.inputs = {input};
    n.attrs.activation = act;
    n.outShape = inShape(input, "addActivation");
    return addNode(std::move(n));
}

NodeId
Graph::addSoftmax(NodeId input, const std::string& name)
{
    Node n;
    n.kind = OpKind::kSoftmax;
    n.name = name;
    n.inputs = {input};
    n.outShape = inShape(input, "addSoftmax");
    return addNode(std::move(n));
}

namespace
{

void
fillPool2d(core::Pool2dGeom& g, const core::Shape& s, std::int64_t k,
           std::int64_t stride, std::int64_t pad, bool ceil_mode)
{
    g.n = s[0];
    g.c = s[1];
    g.inH = s[2];
    g.inW = s[3];
    g.kH = g.kW = k;
    g.strideH = g.strideW = stride;
    g.padH = g.padW = pad;
    g.ceilMode = ceil_mode;
    g.validate();
}

} // namespace

NodeId
Graph::addMaxPool2d(NodeId input, std::int64_t k, std::int64_t stride,
                    std::int64_t pad, bool ceil_mode,
                    const std::string& name)
{
    const auto& s = inShape(input, "addMaxPool2d");
    EB_CHECK(s.size() == 4, "addMaxPool2d: input must be rank 4");
    Node n;
    n.kind = OpKind::kMaxPool2d;
    n.name = name;
    n.inputs = {input};
    fillPool2d(n.attrs.pool2d, s, k, stride, pad, ceil_mode);
    n.outShape = {s[0], s[1], n.attrs.pool2d.outH(),
                  n.attrs.pool2d.outW()};
    return addNode(std::move(n));
}

NodeId
Graph::addAvgPool2d(NodeId input, std::int64_t k, std::int64_t stride,
                    std::int64_t pad, bool ceil_mode,
                    const std::string& name)
{
    const auto& s = inShape(input, "addAvgPool2d");
    EB_CHECK(s.size() == 4, "addAvgPool2d: input must be rank 4");
    Node n;
    n.kind = OpKind::kAvgPool2d;
    n.name = name;
    n.inputs = {input};
    fillPool2d(n.attrs.pool2d, s, k, stride, pad, ceil_mode);
    n.outShape = {s[0], s[1], n.attrs.pool2d.outH(),
                  n.attrs.pool2d.outW()};
    return addNode(std::move(n));
}

NodeId
Graph::addMaxPool3d(NodeId input, std::int64_t k_d, std::int64_t k_hw,
                    std::int64_t stride_d, std::int64_t stride_hw,
                    std::int64_t pad_d, std::int64_t pad_hw,
                    const std::string& name)
{
    const auto& s = inShape(input, "addMaxPool3d");
    EB_CHECK(s.size() == 5, "addMaxPool3d: input must be rank 5");
    Node n;
    n.kind = OpKind::kMaxPool3d;
    n.name = name;
    n.inputs = {input};
    auto& g = n.attrs.pool3d;
    g.n = s[0];
    g.c = s[1];
    g.inD = s[2];
    g.inH = s[3];
    g.inW = s[4];
    g.kD = k_d;
    g.kH = g.kW = k_hw;
    g.strideD = stride_d;
    g.strideH = g.strideW = stride_hw;
    g.padD = pad_d;
    g.padH = g.padW = pad_hw;
    g.validate();
    n.outShape = {s[0], s[1], g.outD(), g.outH(), g.outW()};
    return addNode(std::move(n));
}

NodeId
Graph::addGlobalAvgPool(NodeId input, const std::string& name)
{
    const auto& s = inShape(input, "addGlobalAvgPool");
    EB_CHECK(s.size() == 4, "addGlobalAvgPool: input must be rank 4");
    Node n;
    n.kind = OpKind::kGlobalAvgPool;
    n.name = name;
    n.inputs = {input};
    n.outShape = {s[0], s[1]};
    return addNode(std::move(n));
}

NodeId
Graph::addAdd(NodeId a, NodeId b, const std::string& name)
{
    const auto& sa = inShape(a, "addAdd");
    const auto& sb = inShape(b, "addAdd");
    EB_CHECK(core::sameShape(sa, sb),
             "addAdd(" << name << "): shape mismatch "
                       << core::shapeToString(sa) << " vs "
                       << core::shapeToString(sb));
    Node n;
    n.kind = OpKind::kAdd;
    n.name = name;
    n.inputs = {a, b};
    n.outShape = sa;
    return addNode(std::move(n));
}

NodeId
Graph::addConcat(const std::vector<NodeId>& inputs,
                 const std::string& name)
{
    EB_CHECK(!inputs.empty(), "addConcat: no inputs");
    const auto& s0 = inShape(inputs.front(), "addConcat");
    EB_CHECK(s0.size() == 4, "addConcat: inputs must be rank 4");
    std::int64_t total_c = 0;
    for (NodeId id : inputs) {
        const auto& s = inShape(id, "addConcat");
        EB_CHECK(s.size() == 4 && s[0] == s0[0] && s[2] == s0[2] &&
                     s[3] == s0[3],
                 "addConcat(" << name << "): incompatible input "
                              << core::shapeToString(s));
        total_c += s[1];
    }
    Node n;
    n.kind = OpKind::kConcat;
    n.name = name;
    n.inputs = inputs;
    n.outShape = {s0[0], total_c, s0[2], s0[3]};
    return addNode(std::move(n));
}

NodeId
Graph::addFlatten(NodeId input, const std::string& name)
{
    const auto& s = inShape(input, "addFlatten");
    EB_CHECK(!s.empty(), "addFlatten: scalar input");
    std::int64_t rest = 1;
    for (std::size_t i = 1; i < s.size(); ++i)
        rest *= s[i];
    Node n;
    n.kind = OpKind::kFlatten;
    n.name = name;
    n.inputs = {input};
    n.outShape = {s[0], rest};
    return addNode(std::move(n));
}

NodeId
Graph::addReshape(NodeId input, core::Shape shape,
                  const std::string& name)
{
    const auto& s = inShape(input, "addReshape");
    EB_CHECK(core::numElements(shape) == core::numElements(s),
             "addReshape(" << name << "): numel mismatch "
                           << core::shapeToString(s) << " -> "
                           << core::shapeToString(shape));
    Node n;
    n.kind = OpKind::kReshape;
    n.name = name;
    n.inputs = {input};
    n.outShape = std::move(shape);
    return addNode(std::move(n));
}

NodeId
Graph::addConcatLast(const std::vector<NodeId>& inputs,
                     const std::string& name)
{
    EB_CHECK(!inputs.empty(), "addConcatLast: no inputs");
    const auto& s0 = inShape(inputs.front(), "addConcatLast");
    EB_CHECK(s0.size() >= 2, "addConcatLast: inputs must be rank >= 2");
    std::int64_t total_last = 0;
    for (NodeId id : inputs) {
        const auto& s = inShape(id, "addConcatLast");
        EB_CHECK(s.size() == s0.size(),
                 "addConcatLast(" << name << "): rank mismatch");
        for (std::size_t i = 0; i + 1 < s.size(); ++i)
            EB_CHECK(s[i] == s0[i],
                     "addConcatLast(" << name
                         << "): leading dim mismatch at " << i);
        total_last += s.back();
    }
    Node n;
    n.kind = OpKind::kConcatLast;
    n.name = name;
    n.inputs = inputs;
    n.outShape = s0;
    n.outShape.back() = total_last;
    return addNode(std::move(n));
}

NodeId
Graph::addPadSpatial(NodeId input, std::int64_t top, std::int64_t bottom,
                     std::int64_t left, std::int64_t right,
                     const std::string& name)
{
    const auto& s = inShape(input, "addPadSpatial");
    EB_CHECK(s.size() == 4, "addPadSpatial: input must be rank 4");
    EB_CHECK(top >= 0 && bottom >= 0 && left >= 0 && right >= 0,
             "addPadSpatial: negative pad");
    Node n;
    n.kind = OpKind::kPadSpatial;
    n.name = name;
    n.inputs = {input};
    n.attrs.pads[0] = top;
    n.attrs.pads[1] = bottom;
    n.attrs.pads[2] = left;
    n.attrs.pads[3] = right;
    n.outShape = {s[0], s[1], s[2] + top + bottom, s[3] + left + right};
    return addNode(std::move(n));
}

NodeId
Graph::addUpsample(NodeId input, std::int64_t factor,
                   const std::string& name)
{
    const auto& s = inShape(input, "addUpsample");
    EB_CHECK(s.size() == 4, "addUpsample: input must be rank 4");
    EB_CHECK(factor >= 1, "addUpsample: factor must be >= 1");
    Node n;
    n.kind = OpKind::kUpsample;
    n.name = name;
    n.inputs = {input};
    n.attrs.upsampleFactor = factor;
    n.outShape = {s[0], s[1], s[2] * factor, s[3] * factor};
    return addNode(std::move(n));
}

NodeId
Graph::addDetectPostprocess(NodeId input, std::int64_t num_classes,
                            double score_threshold, double iou_threshold,
                            const std::string& name)
{
    const auto& s = inShape(input, "addDetectPostprocess");
    EB_CHECK(s.size() == 3 && s[2] == 4 + num_classes,
             "addDetectPostprocess(" << name
                 << "): input must be [N, boxes, 4+classes], got "
                 << core::shapeToString(s));
    Node n;
    n.kind = OpKind::kDetectPostprocess;
    n.name = name;
    n.inputs = {input};
    n.attrs.numClasses = num_classes;
    n.attrs.scoreThreshold = score_threshold;
    n.attrs.iouThreshold = iou_threshold;
    n.outShape = {s[0], kMaxDetections, 6};
    return addNode(std::move(n));
}

NodeId
Graph::addYoloDetect(NodeId input, std::int64_t num_classes,
                     std::int64_t num_anchors, const std::string& name)
{
    const auto& s = inShape(input, "addYoloDetect");
    EB_CHECK(s.size() == 4 && s[1] == num_anchors * (5 + num_classes),
             "addYoloDetect(" << name
                 << "): channels must equal anchors*(5+classes), got "
                 << core::shapeToString(s));
    Node n;
    n.kind = OpKind::kYoloDetect;
    n.name = name;
    n.inputs = {input};
    n.attrs.numClasses = num_classes;
    n.attrs.numAnchors = num_anchors;
    n.outShape = s;
    return addNode(std::move(n));
}

void
Graph::markOutput(NodeId id)
{
    EB_CHECK(id >= 0 && id < numNodes(), "markOutput: bad node " << id);
    outputs_.push_back(id);
}

NodeId
Graph::appendRaw(Node n)
{
    if (!n.params.empty())
        materialized_ = true;
    return addNode(std::move(n));
}

void
Graph::markInput(NodeId id)
{
    EB_CHECK(id >= 0 && id < numNodes(), "markInput: bad node " << id);
    EB_CHECK(node(id).kind == OpKind::kInput,
             "markInput: node " << id << " is not an input node");
    inputs_.push_back(id);
}

std::vector<std::int32_t>
Graph::consumerCounts() const
{
    std::vector<std::int32_t> counts(nodes_.size(), 0);
    // Dangling edges are skipped rather than indexed: the verifier
    // counts consumers of graphs it is mid-diagnosis on, and an
    // out-of-range id here must surface as its diagnostic, not as
    // heap corruption.
    for (const auto& n : nodes_)
        for (NodeId in : n.inputs)
            if (in >= 0 && in < numNodes())
                ++counts[static_cast<std::size_t>(in)];
    return counts;
}

GraphStats
Graph::stats() const
{
    GraphStats st;
    st.numNodes = numNodes();
    for (const auto& n : nodes_) {
        st.macs += n.macs();
        st.params += n.paramElems();
        st.paramBytes += n.paramBytes();
        st.activationBytes += n.outputBytes();
    }
    st.flopPerParam = st.params > 0
        ? static_cast<double>(st.macs) / static_cast<double>(st.params)
        : 0.0;
    return st;
}

void
Graph::materializeParams(core::Rng& rng)
{
    for (auto& n : nodes_) {
        n.params.clear();
        switch (n.kind) {
          case OpKind::kLstm:
          case OpKind::kGru: {
            const double stddev = std::sqrt(
                1.0 / static_cast<double>(n.attrs.rnn.hiddenSize));
            n.params.push_back(core::Tensor::randomNormal(
                n.paramShapes[0], rng, stddev)); // W_ih
            n.params.push_back(core::Tensor::randomNormal(
                n.paramShapes[1], rng, stddev)); // W_hh
            n.params.push_back(core::Tensor::randomNormal(
                n.paramShapes[2], rng, 0.01)); // bias
            break;
          }
          case OpKind::kConv2d:
          case OpKind::kConv3d:
          case OpKind::kFusedConvBnAct:
          case OpKind::kDense: {
            EB_CHECK(!n.paramShapes.empty(),
                     "materialize: " << n.name << " has no param shapes");
            const auto& ws = n.paramShapes[0];
            std::int64_t fan_in = 1;
            for (std::size_t i = 1; i < ws.size(); ++i)
                fan_in *= ws[i];
            const double stddev =
                std::sqrt(2.0 / static_cast<double>(fan_in));
            n.params.push_back(
                core::Tensor::randomNormal(ws, rng, stddev));
            if (n.paramShapes.size() > 1) {
                n.params.push_back(core::Tensor::randomNormal(
                    n.paramShapes[1], rng, 0.01));
            }
            break;
          }
          case OpKind::kBatchNorm: {
            const auto& cs = n.paramShapes[0];
            n.params.push_back(
                core::Tensor::randomUniform(cs, rng, 0.8, 1.2)); // gamma
            n.params.push_back(
                core::Tensor::randomNormal(cs, rng, 0.05)); // beta
            n.params.push_back(
                core::Tensor::randomNormal(cs, rng, 0.05)); // mean
            n.params.push_back(
                core::Tensor::randomUniform(cs, rng, 0.5, 1.5)); // var
            break;
          }
          default:
            break;
        }
    }
    materialized_ = true;
}

void
Graph::dropParams()
{
    for (auto& n : nodes_)
        n.params.clear();
    materialized_ = false;
}

std::string
nodeDesc(const Node& n)
{
    return "node " + std::to_string(n.id) + " (" + opKindName(n.kind) +
        " '" + n.name + "')";
}

double
estimatePeakActivationBytes(const Graph& g)
{
    auto refcount = g.consumerCounts();
    for (NodeId id : g.outputIds())
        ++refcount[static_cast<std::size_t>(id)];
    std::vector<bool> live(static_cast<std::size_t>(g.numNodes()),
                           false);
    double live_bytes = 0.0;
    double peak = 0.0;
    for (const auto& n : g.nodes()) {
        live_bytes += n.outputBytes();
        live[static_cast<std::size_t>(n.id)] = true;
        peak = std::max(peak, live_bytes);
        for (NodeId in : n.inputs) {
            auto& rc = refcount[static_cast<std::size_t>(in)];
            if (live[static_cast<std::size_t>(in)] && --rc == 0) {
                live_bytes -= g.node(in).outputBytes();
                live[static_cast<std::size_t>(in)] = false;
            }
        }
    }
    return peak;
}

double
deploymentFootprintBytes(const Graph& g)
{
    double params = 0.0;
    for (const auto& n : g.nodes())
        params += n.paramBytes();
    return params + estimatePeakActivationBytes(g);
}

} // namespace graph
} // namespace edgebench
