/**
 * @file
 * Calibrated (framework, device) execution profiles.
 *
 * Each EngineProfile is anchored to latency points the paper itself
 * reports (Figs. 2-4, 6-10); EXPERIMENTS.md records how well each
 * anchor is reproduced. The structural parameters mean:
 *   - computeEfficiency: achieved fraction of the unit's peak;
 *   - saturationMacs: utilization ramp (single-batch layers smaller
 *     than this cannot fill the unit's parallelism);
 *   - groupedConvFactor: relative depthwise/grouped-conv efficiency;
 *   - perOpOverheadMs: interpreter/launch dispatch cost per operator;
 *   - perInferenceOverheadMs: session entry + input transfer cost.
 */

#include "edgebench/frameworks/framework.hh"

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace frameworks
{

namespace
{

using hw::DeviceId;
using hw::EngineProfile;

EngineProfile
profileRpi3(FrameworkId fw)
{
    switch (fw) {
      case FrameworkId::kTensorFlow:
        // Anchors: Fig. 8 TF ResNet-18 0.99 s, Inception-v4 8.87 s;
        // Fig. 3 MobileNet-v2 1.40 s.
        return {.computeEfficiency = 0.20, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 4.0, .perInferenceOverheadMs = 50.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.035};
      case FrameworkId::kTfLite:
        // Anchors: Fig. 8 TFLite ResNet-18 0.87 s, ResNet-50 2.46 s,
        // Inception-v4 5.51 s.
        return {.computeEfficiency = 0.22, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.8, .perInferenceOverheadMs = 20.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.1};
      case FrameworkId::kCaffe:
        // Anchor: Fig. 3 Caffe MobileNet-v2 2.27 s.
        return {.computeEfficiency = 0.13, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 2.0, .perInferenceOverheadMs = 50.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.02};
      case FrameworkId::kPyTorch:
        // Anchors: Fig. 8 PyTorch ResNet-18 6.57 s, MobileNet-v2
        // 8.28 s (dynamic dispatch makes depthwise pathological).
        return {.computeEfficiency = 0.042, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 3.0, .perInferenceOverheadMs = 40.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.02};
      case FrameworkId::kDarkNet:
        return {.computeEfficiency = 0.08, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 0.5, .perInferenceOverheadMs = 20.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.1};
      default:
        break;
    }
    throw InvalidArgumentError("no RPi profile for framework");
}

EngineProfile
profileJetsonTx2(FrameworkId fw)
{
    switch (fw) {
      case FrameworkId::kPyTorch:
        // Anchors: Fig. 2 TX2 ResNet-18 26.5 ms, ResNet-50 54.3 ms,
        // VGG16 87.7 ms.
        return {.computeEfficiency = 0.32, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.09, .perInferenceOverheadMs = 2.0,
                .saturationMacs = 5e7, .groupedConvFactor = 0.25};
      case FrameworkId::kTensorFlow:
        // Fig. 4: TF trails PyTorch on the TX2 GPU (static-graph
        // feeding overhead).
        return {.computeEfficiency = 0.32, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.5, .perInferenceOverheadMs = 12.0,
                .saturationMacs = 5e7, .groupedConvFactor = 0.25};
      case FrameworkId::kCaffe:
        return {.computeEfficiency = 0.28, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.3, .perInferenceOverheadMs = 6.0,
                .saturationMacs = 5e7, .groupedConvFactor = 0.22};
      case FrameworkId::kDarkNet:
        // Fig. 4: DarkNet's unoptimized CUDA path is ~10x off.
        return {.computeEfficiency = 0.03, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 0.3, .perInferenceOverheadMs = 5.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.2};
      case FrameworkId::kTensorRt:
        return {.computeEfficiency = 0.45, .memoryEfficiency = 0.7,
                .perOpOverheadMs = 0.05, .perInferenceOverheadMs = 1.5,
                .saturationMacs = 5e7, .groupedConvFactor = 0.5};
      default:
        break;
    }
    throw InvalidArgumentError("no TX2 profile for framework");
}

EngineProfile
profileJetsonNano(FrameworkId fw)
{
    switch (fw) {
      case FrameworkId::kTensorRt:
        // Anchors: Fig. 7 TensorRT ResNet-18 23 ms, ResNet-50 32 ms,
        // Inception-v4 95 ms (FP16 + fusion + auto-tuning).
        return {.computeEfficiency = 0.35, .memoryEfficiency = 0.7,
                .perOpOverheadMs = 0.05, .perInferenceOverheadMs = 5.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.35};
      case FrameworkId::kPyTorch:
        // Anchors: Fig. 7 PyTorch ResNet-18 141.3 ms, ResNet-50
        // 215 ms, MobileNet-v2 118.4 ms.
        return {.computeEfficiency = 0.20, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.35, .perInferenceOverheadMs = 25.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.2};
      case FrameworkId::kTensorFlow:
        return {.computeEfficiency = 0.20, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.6, .perInferenceOverheadMs = 40.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.2};
      case FrameworkId::kCaffe:
        return {.computeEfficiency = 0.12, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.4, .perInferenceOverheadMs = 30.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.18};
      case FrameworkId::kDarkNet:
        return {.computeEfficiency = 0.025, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 0.4, .perInferenceOverheadMs = 15.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.15};
      default:
        break;
    }
    throw InvalidArgumentError("no Nano profile for framework");
}

EngineProfile
profileEdgeTpu()
{
    // Anchor: Fig. 2 EdgeTPU MobileNet-v2 2.9 ms; larger models pay
    // the SRAM-spill restreaming cost (weights > 8 MB).
    return {.computeEfficiency = 0.25, .memoryEfficiency = 0.7,
            .perOpOverheadMs = 0.01, .perInferenceOverheadMs = 1.5,
            .saturationMacs = 0.0, .groupedConvFactor = 0.8};
}

EngineProfile
profileMovidius()
{
    // Anchors: Fig. 2 Movidius MobileNet-v2 51 ms, ResNet-50
    // ~102 ms, Inception-v4 632.6 ms, C3D 600 ms. The saturation
    // ramp captures the hand-tuning gap on branchy models.
    return {.computeEfficiency = 0.20, .memoryEfficiency = 0.6,
            .perOpOverheadMs = 0.05, .perInferenceOverheadMs = 8.0,
            .saturationMacs = 6e7, .saturationExponent = 0.5,
            .groupedConvFactor = 1.0};
}

EngineProfile
profilePynq(FrameworkId fw)
{
    if (fw == FrameworkId::kTvmVta) {
        return {.computeEfficiency = 0.12, .memoryEfficiency = 0.8,
                .perOpOverheadMs = 1.0, .perInferenceOverheadMs = 30.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.3};
    }
    if (fw == FrameworkId::kFinn) {
        // Binarized implementations reach higher effective rates.
        return {.computeEfficiency = 0.5, .memoryEfficiency = 0.8,
                .perOpOverheadMs = 0.5, .perInferenceOverheadMs = 10.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.3};
    }
    throw InvalidArgumentError("no PYNQ profile for framework");
}

EngineProfile
profileXeon(FrameworkId fw)
{
    // Anchors: Fig. 9/10 -- Xeon trails TX2 on compute-bound models
    // (single batch cannot fill 44 cores) and matches it on
    // VGG-class layers (paper Section VI-C).
    EngineProfile p{.computeEfficiency = 0.12, .memoryEfficiency = 0.5,
                    .perOpOverheadMs = 0.1,
                    .perInferenceOverheadMs = 3.0,
                    .saturationMacs = 3e8, .groupedConvFactor = 0.2};
    if (fw == FrameworkId::kTensorFlow) {
        p.perOpOverheadMs = 0.6;
        p.perInferenceOverheadMs = 10.0;
    } else if (fw == FrameworkId::kDarkNet) {
        p.computeEfficiency = 0.04;
    }
    return p;
}

EngineProfile
profileHpcGpu(FrameworkId fw)
{
    switch (fw) {
      case FrameworkId::kPyTorch:
        // Anchors: Fig. 6 GTX Titan X PyTorch; Fig. 10 geomean 3x
        // over TX2 with VGG/C3D high and ResNets low.
        return {.computeEfficiency = 0.30, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.03, .perInferenceOverheadMs = 1.0,
                .saturationMacs = 6e8, .groupedConvFactor = 0.3};
      case FrameworkId::kTensorFlow:
        // Fig. 6: TF feed overhead dominates small models on GPUs.
        return {.computeEfficiency = 0.30, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.15, .perInferenceOverheadMs = 10.0,
                .saturationMacs = 6e8, .groupedConvFactor = 0.3};
      case FrameworkId::kCaffe:
        return {.computeEfficiency = 0.28, .memoryEfficiency = 0.6,
                .perOpOverheadMs = 0.08, .perInferenceOverheadMs = 4.0,
                .saturationMacs = 6e8, .groupedConvFactor = 0.25};
      case FrameworkId::kDarkNet:
        return {.computeEfficiency = 0.05, .memoryEfficiency = 0.5,
                .perOpOverheadMs = 0.05, .perInferenceOverheadMs = 2.0,
                .saturationMacs = 0.0, .groupedConvFactor = 0.2};
      case FrameworkId::kTensorRt:
        return {.computeEfficiency = 0.45, .memoryEfficiency = 0.7,
                .perOpOverheadMs = 0.02, .perInferenceOverheadMs = 0.8,
                .saturationMacs = 5e8, .groupedConvFactor = 0.5};
      default:
        break;
    }
    throw InvalidArgumentError("no HPC-GPU profile for framework");
}

} // namespace

namespace
{

/** Keras drives the TensorFlow engine with an extra API layer. */
EngineProfile
kerasFrom(EngineProfile tf)
{
    tf.perOpOverheadMs *= 1.15;
    tf.perInferenceOverheadMs *= 1.2;
    return tf;
}

} // namespace

hw::EngineProfile
engineProfile(FrameworkId fw, hw::DeviceId device)
{
    if (fw == FrameworkId::kKeras) {
        if (!framework(fw).supportsDevice(device)) {
            throw InvalidArgumentError(
                "Keras does not support " + hw::deviceName(device));
        }
        return kerasFrom(
            engineProfile(FrameworkId::kTensorFlow, device));
    }
    if (!framework(fw).supportsDevice(device)) {
        throw InvalidArgumentError(
            frameworkName(fw) + " does not support " +
            hw::deviceName(device));
    }
    switch (device) {
      case DeviceId::kRpi3:
        return profileRpi3(fw);
      case DeviceId::kJetsonTx2:
        return profileJetsonTx2(fw);
      case DeviceId::kJetsonNano:
        return profileJetsonNano(fw);
      case DeviceId::kEdgeTpu:
        return profileEdgeTpu();
      case DeviceId::kMovidius:
        return profileMovidius();
      case DeviceId::kPynqZ1:
        return profilePynq(fw);
      case DeviceId::kXeon:
        return profileXeon(fw);
      case DeviceId::kRtx2080:
      case DeviceId::kGtxTitanX:
      case DeviceId::kTitanXp:
        return profileHpcGpu(fw);
    }
    throw InternalError("engineProfile: unknown device");
}

} // namespace frameworks
} // namespace edgebench
