#include "edgebench/frameworks/deploy.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace frameworks
{

std::string
markSymbol(DeployMark m)
{
    switch (m) {
      case DeployMark::kOk: return "OK";
      case DeployMark::kDynamicSwap: return "^";
      case DeployMark::kCodeIncompat: return "O";
      case DeployMark::kConversionBarrier: return "4";
      case DeployMark::kBramSpill: return "^^";
      case DeployMark::kMemoryError: return "MEM";
    }
    throw InternalError("markSymbol: unknown mark");
}

std::optional<Deployment>
tryDeploy(FrameworkId fw, const graph::Graph& model_graph,
          hw::DeviceId device, const CompileOptions& opts)
{
    if (!framework(fw).supportsDevice(device))
        return std::nullopt;
    try {
        CompiledModel m = framework(fw).compile(model_graph, device,
                                                opts);
        Deployment d{fw, std::move(m), DeployMark::kOk};
        if (d.model.usedDynamicGraphFallback)
            d.mark = DeployMark::kDynamicSwap;
        return d;
    } catch (const CompatibilityError&) {
        return std::nullopt;
    } catch (const MemoryCapacityError&) {
        return std::nullopt;
    }
}

std::optional<Deployment>
bestDeployment(const graph::Graph& model_graph, hw::DeviceId device)
{
    std::optional<Deployment> best;
    for (FrameworkId fw : frameworksFor(device)) {
        auto d = tryDeploy(fw, model_graph, device);
        if (!d)
            continue;
        if (!best ||
            d->model.latencyMs() < best->model.latencyMs()) {
            best = std::move(d);
        }
    }
    return best;
}

namespace
{

/**
 * The framework context the paper used per platform (Section VI-A):
 * general-purpose stacks on the CPU/GPU boards, the captive toolkit
 * on each accelerator. Table V marks are relative to these, not to
 * every framework that could possibly target the device (e.g. a
 * quantized TFLite AlexNet would fit the RPi, but the paper's Table V
 * records the TF/PyTorch behaviour).
 */
std::vector<FrameworkId>
representativeFrameworks(hw::DeviceId device)
{
    switch (device) {
      case hw::DeviceId::kRpi3:
        return {FrameworkId::kTensorFlow, FrameworkId::kPyTorch};
      case hw::DeviceId::kJetsonTx2:
      case hw::DeviceId::kJetsonNano:
        return {FrameworkId::kPyTorch, FrameworkId::kTensorFlow};
      case hw::DeviceId::kEdgeTpu:
        return {FrameworkId::kTfLite};
      case hw::DeviceId::kMovidius:
        return {FrameworkId::kMovidiusNcsdk};
      case hw::DeviceId::kPynqZ1:
        return {FrameworkId::kTvmVta, FrameworkId::kFinn};
      default:
        return {FrameworkId::kPyTorch};
    }
}

} // namespace

DeployMark
deploymentMark(models::ModelId model, hw::DeviceId device)
{
    const graph::Graph g = models::buildModel(model);
    DeployMark failure = DeployMark::kMemoryError;
    bool any_attempt = false;

    for (FrameworkId fw : representativeFrameworks(device)) {
        any_attempt = true;
        try {
            CompiledModel m = framework(fw).compile(g, device);
            return m.usedDynamicGraphFallback
                ? DeployMark::kDynamicSwap
                : DeployMark::kOk;
        } catch (const CompatibilityError&) {
            if (device == hw::DeviceId::kEdgeTpu) {
                failure = DeployMark::kConversionBarrier;
            } else if (device == hw::DeviceId::kPynqZ1) {
                failure = DeployMark::kBramSpill;
            } else {
                failure = DeployMark::kCodeIncompat;
            }
        } catch (const MemoryCapacityError&) {
            // keep kMemoryError unless a later framework succeeds
        }
    }
    EB_CHECK(any_attempt,
             "no framework targets " << hw::deviceName(device));
    return failure;
}

} // namespace frameworks
} // namespace edgebench
