#include "edgebench/frameworks/runtime.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace frameworks
{

std::string
phaseName(Phase p)
{
    switch (p) {
      case Phase::kLibraryLoading: return "library_loading";
      case Phase::kGraphConstruction: return "graph_construction";
      case Phase::kWeightInit: return "weight_init";
      case Phase::kDataTransfer: return "data_transfer";
      case Phase::kCompute: return "compute";
      case Phase::kSessionManagement: return "session_management";
    }
    throw InternalError("phaseName: unknown phase");
}

double
ProfileReport::totalMs() const
{
    double t = 0.0;
    for (const auto& s : samples)
        t += s.ms;
    return t;
}

double
ProfileReport::fraction(Phase p) const
{
    const double total = totalMs();
    if (total <= 0.0)
        return 0.0;
    double t = 0.0;
    for (const auto& s : samples)
        if (s.phase == p)
            t += s.ms;
    return t / total;
}

namespace
{

/** Host-speed scale factor: slower CPUs pay more for Python setup. */
double
hostScale(const CompiledModel& m)
{
    const auto& cpu = hw::deviceSpec(m.device).cpu;
    // Normalize to the TX2-class CPU (48 GFLOPS).
    return 48.0 / std::max(cpu.peakGflopsF32, 1.0);
}

bool
isPython(const CompiledModel& m)
{
    return framework(m.framework).traits().language == "Python";
}

bool
runsOnGpuLikeUnit(const CompiledModel& m)
{
    return m.unit != hw::UnitKind::kCpu;
}

/** Per-node one-time graph-construction cost, ms (at TX2 scale). */
double
graphSetupPerNodeMs(FrameworkId fw)
{
    const auto& tr = framework(fw).traits();
    if (tr.dynamicGraph)
        return 3.0; // object construction only; graph built per run
    switch (fw) {
      case FrameworkId::kTensorFlow:
        return 300.0; // base_layer machinery (Fig. 5 anchor)
      case FrameworkId::kTfLite:
        return 5.0;   // flatbuffer load, graph is frozen
      case FrameworkId::kMovidiusNcsdk:
      case FrameworkId::kTvmVta:
      case FrameworkId::kFinn:
        return 8.0;   // precompiled blob load
      case FrameworkId::kTensorRt:
        return 40.0;  // engine deserialization + tactic replay
      case FrameworkId::kDarkNet:
        return 1.0;   // C cfg parser
      default:
        return 30.0;
    }
}

} // namespace

InferenceSession::InferenceSession(CompiledModel model)
    : model_(std::move(model))
{
}

double
InferenceSession::libraryLoadMs() const
{
    const double base = isPython(model_) ? 2500.0 : 120.0;
    return base * hostScale(model_);
}

double
InferenceSession::graphConstructionMs() const
{
    return graphSetupPerNodeMs(model_.framework) *
        static_cast<double>(model_.graph.numNodes()) *
        hostScale(model_);
}

double
InferenceSession::weightInitMs() const
{
    // Weight generation/loading: ~25 ns per parameter at TX2 scale.
    double params = 0.0;
    for (const auto& n : model_.graph.nodes())
        params += static_cast<double>(n.paramElems());
    return params * 25e-6 * hostScale(model_);
}

double
InferenceSession::weightUploadMs() const
{
    if (!runsOnGpuLikeUnit(model_))
        return 0.0;
    double bytes = 0.0;
    for (const auto& n : model_.graph.nodes())
        bytes += n.paramBytes();
    // Host-to-device staging at ~1 GB/s effective.
    return bytes / 1e9 * 1e3;
}

TimingResult
InferenceSession::run(std::int64_t n) const
{
    EB_CHECK(n > 0, "run: need at least one inference");
    TimingResult r;
    r.inferences = n;
    r.initializationMs = libraryLoadMs() + graphConstructionMs() +
        weightInitMs() + weightUploadMs();
    r.perInferenceMs = model_.latencyMs();
    return r;
}

ProfileReport
InferenceSession::profileRun(std::int64_t n) const
{
    EB_CHECK(n > 0, "profileRun: need at least one inference");
    ProfileReport rep;
    rep.inferences = n;
    const bool torch_like =
        framework(model_.framework).traits().dynamicGraph;
    const bool gpu = runsOnGpuLikeUnit(model_);

    // --- One-time phases --------------------------------------------
    rep.samples.push_back({Phase::kLibraryLoading,
                           torch_like ? "<built-in import>"
                                      : "Library Loading",
                           libraryLoadMs()});
    rep.samples.push_back({Phase::kGraphConstruction,
                           torch_like ? "model.__init__" : "base_layer",
                           graphConstructionMs()});
    rep.samples.push_back({Phase::kWeightInit,
                           torch_like ? "randn" : "layers & weights",
                           weightInitMs()});
    if (!torch_like) {
        // Static-graph session setup (TF_SessionMakeCallable +
        // _initialize_variable + session.__init__ in Fig. 5).
        rep.samples.push_back({Phase::kSessionManagement,
                               "TF_SessionMakeCallable",
                               0.25 * graphConstructionMs()});
    }

    // --- Per-inference phases ---------------------------------------
    const auto cost = model_.latency();
    const double nf = static_cast<double>(n);

    if (gpu) {
        // Input staging each inference plus the one-time weight
        // upload (PyTorch's _C._TensorBase.to()).
        double in_bytes = 0.0;
        for (auto id : model_.graph.inputIds())
            in_bytes += model_.graph.node(id).outputBytes();
        const double per_inf_ms = in_bytes / 0.05e9 * 1e3;
        rep.samples.push_back({Phase::kDataTransfer,
                               torch_like ? "_C._TensorBase.to()"
                                          : "feed/fetch transfer",
                               weightUploadMs() + nf * per_inf_ms});
    }

    // Split compute across operator families like the paper's pies.
    double conv_macs = 0.0, dense_macs = 0.0, bn_macs = 0.0,
           other_macs = 0.0;
    for (const auto& node : model_.graph.nodes()) {
        const auto m = static_cast<double>(node.macs());
        switch (node.kind) {
          case graph::OpKind::kConv2d:
          case graph::OpKind::kConv3d:
          case graph::OpKind::kFusedConvBnAct:
            conv_macs += m;
            break;
          case graph::OpKind::kDense:
            dense_macs += m;
            break;
          case graph::OpKind::kBatchNorm:
            bn_macs += m;
            break;
          default:
            other_macs += m + static_cast<double>(node.outputElems());
        }
    }
    const double total_macs =
        std::max(conv_macs + dense_macs + bn_macs + other_macs, 1.0);
    const double kernel_ms =
        nf * std::max(cost.computeMs, cost.memoryMs);
    rep.samples.push_back({Phase::kCompute, "conv2d",
                           kernel_ms * conv_macs / total_macs});
    rep.samples.push_back({Phase::kCompute,
                           torch_like ? "linear" : "dense",
                           kernel_ms * dense_macs / total_macs});
    rep.samples.push_back({Phase::kCompute, "batch_norm",
                           kernel_ms * bn_macs / total_macs});
    rep.samples.push_back({Phase::kCompute, "activation & other",
                           kernel_ms * other_macs / total_macs});

    rep.samples.push_back({Phase::kSessionManagement,
                           torch_like ? "forward"
                                      : "TF_SessionRunCallable",
                           nf * cost.overheadMs});
    return rep;
}

} // namespace frameworks
} // namespace edgebench
