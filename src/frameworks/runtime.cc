#include "edgebench/frameworks/runtime.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace frameworks
{

std::string
phaseName(Phase p)
{
    switch (p) {
      case Phase::kLibraryLoading: return "library_loading";
      case Phase::kGraphConstruction: return "graph_construction";
      case Phase::kWeightInit: return "weight_init";
      case Phase::kDataTransfer: return "data_transfer";
      case Phase::kCompute: return "compute";
      case Phase::kSessionManagement: return "session_management";
    }
    throw InternalError("phaseName: unknown phase");
}

double
ProfileReport::totalMs() const
{
    double t = 0.0;
    for (const auto& s : samples)
        t += s.ms;
    return t;
}

double
ProfileReport::fraction(Phase p) const
{
    const double total = totalMs();
    if (total <= 0.0)
        return 0.0;
    double t = 0.0;
    for (const auto& s : samples)
        if (s.phase == p)
            t += s.ms;
    return t / total;
}

namespace
{

/** Host-speed scale factor: slower CPUs pay more for Python setup. */
double
hostScale(const CompiledModel& m)
{
    const auto& cpu = hw::deviceSpec(m.device).cpu;
    // Normalize to the TX2-class CPU (48 GFLOPS).
    return 48.0 / std::max(cpu.peakGflopsF32, 1.0);
}

bool
isPython(const CompiledModel& m)
{
    return framework(m.framework).traits().language == "Python";
}

bool
runsOnGpuLikeUnit(const CompiledModel& m)
{
    return m.unit != hw::UnitKind::kCpu;
}

/** Fig. 5 operator families the compute pie splits across. */
enum Family
{
    kFamConv = 0,
    kFamDense,
    kFamBn,
    kFamOther,
    kFamCount,
};

int
familyOf(const graph::Node& n)
{
    switch (n.kind) {
      case graph::OpKind::kConv2d:
      case graph::OpKind::kConv3d:
      case graph::OpKind::kFusedConvBnAct:
        return kFamConv;
      case graph::OpKind::kDense:
        return kFamDense;
      case graph::OpKind::kBatchNorm:
        return kFamBn;
      default:
        return kFamOther;
    }
}

/** Work attributed to a node in the compute-phase split. */
double
familyWeight(const graph::Node& n)
{
    const auto m = static_cast<double>(n.macs());
    if (familyOf(n) == kFamOther)
        return m + static_cast<double>(n.outputElems());
    return m;
}

const char*
familyLabel(int family, bool torch_like)
{
    switch (family) {
      case kFamConv: return "conv2d";
      case kFamDense: return torch_like ? "linear" : "dense";
      case kFamBn: return "batch_norm";
      default: return "activation & other";
    }
}

/** Per-node one-time graph-construction cost, ms (at TX2 scale). */
double
graphSetupPerNodeMs(FrameworkId fw)
{
    const auto& tr = framework(fw).traits();
    if (tr.dynamicGraph)
        return 3.0; // object construction only; graph built per run
    switch (fw) {
      case FrameworkId::kTensorFlow:
        return 300.0; // base_layer machinery (Fig. 5 anchor)
      case FrameworkId::kTfLite:
        return 5.0;   // flatbuffer load, graph is frozen
      case FrameworkId::kMovidiusNcsdk:
      case FrameworkId::kTvmVta:
      case FrameworkId::kFinn:
        return 8.0;   // precompiled blob load
      case FrameworkId::kTensorRt:
        return 40.0;  // engine deserialization + tactic replay
      case FrameworkId::kDarkNet:
        return 1.0;   // C cfg parser
      default:
        return 30.0;
    }
}

} // namespace

InferenceSession::InferenceSession(CompiledModel model)
    : model_(std::move(model))
{
}

double
InferenceSession::libraryLoadMs() const
{
    const double base = isPython(model_) ? 2500.0 : 120.0;
    return base * hostScale(model_);
}

double
InferenceSession::graphConstructionMs() const
{
    return graphSetupPerNodeMs(model_.framework) *
        static_cast<double>(model_.graph.numNodes()) *
        hostScale(model_);
}

double
InferenceSession::weightInitMs() const
{
    // Weight generation/loading: ~25 ns per parameter at TX2 scale.
    double params = 0.0;
    for (const auto& n : model_.graph.nodes())
        params += static_cast<double>(n.paramElems());
    return params * 25e-6 * hostScale(model_);
}

double
InferenceSession::weightUploadMs() const
{
    if (!runsOnGpuLikeUnit(model_))
        return 0.0;
    double bytes = 0.0;
    for (const auto& n : model_.graph.nodes())
        bytes += n.paramBytes();
    // Host-to-device staging at ~1 GB/s effective.
    return bytes / 1e9 * 1e3;
}

TimingResult
InferenceSession::run(std::int64_t n) const
{
    EB_CHECK(n > 0, "run: need at least one inference");
    TimingResult r;
    r.inferences = n;
    r.initializationMs = libraryLoadMs() + graphConstructionMs() +
        weightInitMs() + weightUploadMs();
    r.perInferenceMs = model_.latencyMs();
    return r;
}

ProfileReport
InferenceSession::profileRun(std::int64_t n, obs::Tracer* tracer) const
{
    EB_CHECK(n > 0, "profileRun: need at least one inference");
    ProfileReport rep;
    rep.inferences = n;
    const bool torch_like =
        framework(model_.framework).traits().dynamicGraph;
    const bool gpu = runsOnGpuLikeUnit(model_);

    const double lib_ms = libraryLoadMs();
    const double graph_ms = graphConstructionMs();
    const double winit_ms = weightInitMs();
    // Static-graph session setup (TF_SessionMakeCallable +
    // _initialize_variable + session.__init__ in Fig. 5).
    const double setup_ms = torch_like ? 0.0 : 0.25 * graph_ms;

    const char* lib_label =
        torch_like ? "<built-in import>" : "Library Loading";
    const char* graph_label =
        torch_like ? "model.__init__" : "base_layer";
    const char* winit_label =
        torch_like ? "randn" : "layers & weights";
    const char* transfer_label =
        torch_like ? "_C._TensorBase.to()" : "feed/fetch transfer";
    const char* session_label =
        torch_like ? "forward" : "TF_SessionRunCallable";

    // --- One-time phases --------------------------------------------
    rep.samples.push_back({Phase::kLibraryLoading, lib_label, lib_ms});
    rep.samples.push_back(
        {Phase::kGraphConstruction, graph_label, graph_ms});
    rep.samples.push_back({Phase::kWeightInit, winit_label, winit_ms});
    if (!torch_like)
        rep.samples.push_back({Phase::kSessionManagement,
                               "TF_SessionMakeCallable", setup_ms});

    // --- Per-inference phases ---------------------------------------
    const auto cost = model_.latency();
    const double nf = static_cast<double>(n);

    // Input staging each inference plus the one-time weight upload
    // (PyTorch's _C._TensorBase.to()).
    double per_inf_transfer_ms = 0.0;
    if (gpu) {
        double in_bytes = 0.0;
        for (auto id : model_.graph.inputIds())
            in_bytes += model_.graph.node(id).outputBytes();
        per_inf_transfer_ms = in_bytes / 0.05e9 * 1e3;
        rep.samples.push_back(
            {Phase::kDataTransfer, transfer_label,
             weightUploadMs() + nf * per_inf_transfer_ms});
    }

    // Split compute across operator families like the paper's pies.
    double fam_macs[kFamCount] = {0.0, 0.0, 0.0, 0.0};
    for (const auto& node : model_.graph.nodes())
        fam_macs[familyOf(node)] += familyWeight(node);
    const double total_macs =
        std::max(fam_macs[kFamConv] + fam_macs[kFamDense] +
                     fam_macs[kFamBn] + fam_macs[kFamOther],
                 1.0);
    const double kernel1_ms =
        std::max(cost.computeMs, cost.memoryMs);
    double fam1_ms[kFamCount];
    for (int f = 0; f < kFamCount; ++f)
        fam1_ms[f] = kernel1_ms * fam_macs[f] / total_macs;

    for (int f = 0; f < kFamCount; ++f)
        rep.samples.push_back({Phase::kCompute,
                               familyLabel(f, torch_like),
                               nf * fam1_ms[f]});

    rep.samples.push_back({Phase::kSessionManagement, session_label,
                           nf * cost.overheadMs});

    // --- Span timeline (same numbers, per-node attribution) ---------
    if (obs::kEnabledAtBuild && tracer) {
        obs::Tracer& t = *tracer;
        t.recordSpan(lib_label, phaseName(Phase::kLibraryLoading),
                     lib_ms);
        t.recordSpan(graph_label,
                     phaseName(Phase::kGraphConstruction), graph_ms);
        t.recordSpan(winit_label, phaseName(Phase::kWeightInit),
                     winit_ms);
        if (!torch_like)
            t.recordSpan("TF_SessionMakeCallable",
                         phaseName(Phase::kSessionManagement),
                         setup_ms);
        if (gpu)
            t.recordSpan(transfer_label,
                         phaseName(Phase::kDataTransfer),
                         weightUploadMs());

        // Roofline costs attribute family time to individual nodes
        // and label their boundedness.
        const auto node_costs = hw::perNodeCosts(
            model_.graph, model_.computeUnit(), model_.profile);
        double fam_w[kFamCount] = {0.0, 0.0, 0.0, 0.0};
        double fam_members[kFamCount] = {0.0, 0.0, 0.0, 0.0};
        for (const auto& node : model_.graph.nodes()) {
            const auto idx = static_cast<std::size_t>(node.id);
            fam_w[familyOf(node)] += node_costs[idx].totalMs();
            fam_members[familyOf(node)] += 1.0;
        }

        // First inference in full detail.
        const obs::SpanId inf0 = t.beginSpan("inference[0]",
                                             "inference");
        if (gpu)
            t.recordSpan(transfer_label,
                         phaseName(Phase::kDataTransfer),
                         per_inf_transfer_ms);
        for (int f = 0; f < kFamCount; ++f) {
            if (fam1_ms[f] <= 0.0)
                continue;
            const obs::SpanId fam = t.beginSpan(
                familyLabel(f, torch_like),
                phaseName(Phase::kCompute));
            for (const auto& node : model_.graph.nodes()) {
                if (familyOf(node) != f)
                    continue;
                const auto& c =
                    node_costs[static_cast<std::size_t>(node.id)];
                // Distribute the family's phase time across its
                // nodes proportionally to their roofline cost.
                const double share = fam_w[f] > 0.0
                    ? c.totalMs() / fam_w[f]
                    : 1.0 / fam_members[f];
                const obs::SpanId s = t.recordSpan(
                    node.name, "op", fam1_ms[f] * share);
                t.argText(s, "op", graph::opKindName(node.kind));
                t.argNum(s, "flops",
                         2.0 * static_cast<double>(node.macs()));
                double bytes = node.outputBytes() + node.paramBytes();
                for (auto in : node.inputs)
                    bytes += model_.graph.node(in).outputBytes();
                t.argNum(s, "bytes", bytes);
                t.argText(s, "bound", hw::boundednessLabel(c));
                t.argNum(s, "roofline_compute_ms", c.computeMs);
                t.argNum(s, "roofline_memory_ms", c.memoryMs);
            }
            t.endSpan(fam);
        }
        t.recordSpan(session_label,
                     phaseName(Phase::kSessionManagement),
                     cost.overheadMs);
        t.endSpan(inf0);

        // Steady state: the remaining n-1 inferences, aggregated.
        if (n > 1) {
            const double rest = nf - 1.0;
            const obs::SpanId bulk = t.beginSpan(
                "inference[1.." + std::to_string(n) + ")",
                "inference");
            if (gpu)
                t.recordSpan(transfer_label,
                             phaseName(Phase::kDataTransfer),
                             rest * per_inf_transfer_ms);
            for (int f = 0; f < kFamCount; ++f)
                if (fam1_ms[f] > 0.0)
                    t.recordSpan(familyLabel(f, torch_like),
                                 phaseName(Phase::kCompute),
                                 rest * fam1_ms[f]);
            t.recordSpan(session_label,
                         phaseName(Phase::kSessionManagement),
                         rest * cost.overheadMs);
            t.endSpan(bulk);
        }
    }
    return rep;
}

} // namespace frameworks
} // namespace edgebench
