/**
 * @file
 * Deployment helpers: best-framework selection (Fig. 2 methodology)
 * and the model x platform compatibility matrix (Table V).
 */

#ifndef EDGEBENCH_FRAMEWORKS_DEPLOY_HH
#define EDGEBENCH_FRAMEWORKS_DEPLOY_HH

#include <optional>
#include <string>
#include <vector>

#include "edgebench/frameworks/framework.hh"
#include "edgebench/models/zoo.hh"

namespace edgebench
{
namespace frameworks
{

/** Table V deployability marks. */
enum class DeployMark
{
    kOk,                ///< "3": deploys and runs normally
    kDynamicSwap,       ///< "^": runs via dynamic graph, order-of-
                        ///  magnitude slower (memory pressure)
    kCodeIncompat,      ///< "O": code incompatibility
    kConversionBarrier, ///< "4": cannot be converted (EdgeTPU)
    kBramSpill,         ///< "^^": exceeds FPGA BRAM / toolchain scope
    kMemoryError,       ///< static-graph out-of-memory (Figs. 3-4)
};

/** Table V symbol for a mark ("OK", "^", "O", "4", "^^", "MEM"). */
std::string markSymbol(DeployMark m);

/** One attempted deployment. */
struct Deployment
{
    FrameworkId framework;
    CompiledModel model;
    DeployMark mark = DeployMark::kOk;
};

/**
 * Compile @p model_graph with @p fw for @p device, mapping failures
 * to marks. Returns nullopt when the framework cannot produce any
 * runnable plan (code incompatibility, conversion barrier, OOM).
 */
std::optional<Deployment> tryDeploy(FrameworkId fw,
                                    const graph::Graph& model_graph,
                                    hw::DeviceId device,
                                    const CompileOptions& opts = {});

/**
 * The Fig. 2 methodology: try every framework available on
 * @p device and return the fastest runnable deployment.
 */
std::optional<Deployment> bestDeployment(
    const graph::Graph& model_graph, hw::DeviceId device);

/**
 * Table V entry for (model, device): the mark of the best achievable
 * deployment, or the failure mark when nothing runs.
 */
DeployMark deploymentMark(models::ModelId model, hw::DeviceId device);

} // namespace frameworks
} // namespace edgebench

#endif // EDGEBENCH_FRAMEWORKS_DEPLOY_HH
