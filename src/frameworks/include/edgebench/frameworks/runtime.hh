/**
 * @file
 * Simulated framework runtime: inference-loop timing and the
 * software-stack phase profiler that reproduces Fig. 5 of the paper.
 *
 * The paper profiles TensorFlow and PyTorch with cProfile and groups
 * low-level functions into tasks (library loading, graph setup,
 * tensor transfer, compute kernels, session management). We model
 * each phase from first principles — one-time costs scale with model
 * size and host speed, per-inference costs come from the roofline —
 * and report them under the same labels the paper uses.
 */

#ifndef EDGEBENCH_FRAMEWORKS_RUNTIME_HH
#define EDGEBENCH_FRAMEWORKS_RUNTIME_HH

#include <string>
#include <vector>

#include "edgebench/frameworks/framework.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace frameworks
{

/** Software-stack phases (Fig. 5 grouping). */
enum class Phase
{
    kLibraryLoading,
    kGraphConstruction,
    kWeightInit,
    kDataTransfer,
    kCompute,
    kSessionManagement,
};

/** @return stable phase mnemonic, e.g. "graph_construction". */
std::string phaseName(Phase p);

/** One profiled entry: a phase plus its framework-specific label. */
struct PhaseSample
{
    Phase phase;
    /** The label the paper's Fig. 5 uses, e.g. "base_layer". */
    std::string label;
    double ms = 0.0;
};

/** Output of a profiled run. */
struct ProfileReport
{
    std::vector<PhaseSample> samples;
    std::int64_t inferences = 0;

    double totalMs() const;
    /** Fraction [0,1] of total time spent in @p phase. */
    double fraction(Phase p) const;
};

/** Timing of an inference loop (paper Section V conventions). */
struct TimingResult
{
    /** One-time setup cost, excluded from time-per-inference. */
    double initializationMs = 0.0;
    /** Steady-state time per single-batch inference. */
    double perInferenceMs = 0.0;
    std::int64_t inferences = 0;

    double totalMs() const
    {
        return initializationMs + perInferenceMs * inferences;
    }
};

/**
 * A deployed model ready to serve inferences. Wraps a CompiledModel
 * with the framework's one-time cost model.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(CompiledModel model);

    const CompiledModel& model() const { return model_; }

    /** Simulate @p n single-batch inferences. */
    TimingResult run(std::int64_t n) const;

    /**
     * Simulate a profiled run of @p n inferences and attribute time
     * to software-stack phases (Fig. 5).
     *
     * When @p tracer is non-null, the run is additionally emitted as
     * a span timeline: one top-level span per one-time phase, then a
     * fully detailed first inference — per-node spans grouped under
     * operator-family spans, each node span carrying op kind, FLOPs,
     * bytes and roofline boundedness — then one aggregated span for
     * the remaining n-1 inferences. Span categories are the Fig. 5
     * phase names, and the per-category time totals of the trace
     * equal this report's per-phase totals (the fig05 bench and the
     * `obs` integration suite assert this).
     */
    ProfileReport profileRun(std::int64_t n,
                             obs::Tracer* tracer = nullptr) const;

    /** @name One-time cost components (exposed for tests) */
    /// @{
    double libraryLoadMs() const;
    double graphConstructionMs() const;
    double weightInitMs() const;
    double weightUploadMs() const;
    /// @}

  private:
    CompiledModel model_;
};

} // namespace frameworks
} // namespace edgebench

#endif // EDGEBENCH_FRAMEWORKS_RUNTIME_HH
