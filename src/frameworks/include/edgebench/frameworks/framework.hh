/**
 * @file
 * DNN framework models.
 *
 * A Framework is a *compiler* plus a *runtime model*: compile() takes
 * a zoo graph, checks deployability on a target device (op support,
 * conversion barriers, memory capacity — the Table V rules), applies
 * the optimization passes the framework supports (Table II), selects
 * the compute unit, and attaches the calibrated EngineProfile. The
 * result is a CompiledModel whose latency/energy are then priced by
 * the roofline engine.
 */

#ifndef EDGEBENCH_FRAMEWORKS_FRAMEWORK_HH
#define EDGEBENCH_FRAMEWORKS_FRAMEWORK_HH

#include <optional>
#include <string>
#include <vector>

#include "edgebench/graph/graph.hh"
#include "edgebench/hw/device.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/models/zoo.hh"

namespace edgebench
{
namespace frameworks
{

/** Framework identifiers (Table II plus the two PYNQ stacks). */
enum class FrameworkId
{
    kTensorFlow,
    kTfLite,
    /** Keras: high-level API over the TensorFlow engine (paper
     *  Section III-A: "we use Keras and TensorFlow implementations
     *  interchangeably"). */
    kKeras,
    kCaffe,
    kMovidiusNcsdk,
    kPyTorch,
    kTensorRt,
    kDarkNet,
    kTvmVta,
    kFinn,
};

/** Star ratings used by Table II (1-3). */
using Stars = int;

/** Table II traits of one framework. */
struct FrameworkTraits
{
    std::string language;        ///< main interfacing language
    bool industryBacked = false;
    bool trainingFramework = false;
    Stars usability = 1;
    Stars addingNewModels = 1;
    Stars preDefinedModels = 1;
    Stars documentation = 1;
    bool noExtraSteps = true;    ///< deployment without extra steps
    bool mobileDeployment = false;
    Stars lowLevelModifications = 1;
    Stars compatibilityWithOthers = 1;
    /** @name Optimization rows of Table II */
    /// @{
    bool quantization = false;
    bool mixedPrecision = false;
    bool dynamicGraph = false;
    bool pruningExploit = false;
    bool fusion = false;
    bool autoTuning = false;
    bool halfPrecision = false;
    /// @}
    /** Memory overhead multiplier of the runtime over raw weights. */
    double memoryOverheadFactor = 1.5;
    /** Latency multiplier when a dynamic graph pages out of RAM. */
    double swapPenaltyFactor = 12.0;
};

/** Compilation knobs. */
struct CompileOptions
{
    /** Request INT8 quantization (forced on EdgeTPU/TVM targets). */
    std::optional<bool> quantizeInt8;
    /** Request FP16 inference where supported. */
    std::optional<bool> useFp16;
    /** Weight sparsity to apply before deployment (0 = dense). */
    double pruneFraction = 0.0;
};

/** A model lowered onto a (framework, device) pair. */
struct CompiledModel
{
    graph::Graph graph;
    FrameworkId framework;
    hw::DeviceId device;
    hw::UnitKind unit = hw::UnitKind::kCpu;
    hw::EngineProfile profile;
    /** >1 when the dynamic-graph fallback pages memory. */
    double swapFactor = 1.0;
    bool usedDynamicGraphFallback = false;

    /** The compute unit this plan executes on. */
    const hw::ComputeUnit& computeUnit() const;

    /** End-to-end single-batch latency (includes swap penalty). */
    hw::GraphCost latency() const;
    double latencyMs() const { return latency().totalMs; }
};

class Framework
{
  public:
    Framework(FrameworkId id, std::string name, FrameworkTraits traits);

    FrameworkId id() const { return id_; }
    const std::string& name() const { return name_; }
    const FrameworkTraits& traits() const { return traits_; }

    /** True when this framework can drive @p device at all. */
    bool supportsDevice(hw::DeviceId device) const;

    /**
     * Lower @p model onto @p device. Throws CompatibilityError on op
     * or conversion barriers, MemoryCapacityError when a static-graph
     * framework cannot fit the model; dynamic-graph frameworks fall
     * back to a swap-penalized plan instead of failing.
     */
    CompiledModel compile(const graph::Graph& model,
                          hw::DeviceId device,
                          const CompileOptions& options = {}) const;

  private:
    FrameworkId id_;
    std::string name_;
    FrameworkTraits traits_;
};

/** Registry lookup. */
const Framework& framework(FrameworkId id);

/** All frameworks, Table II order. */
const std::vector<FrameworkId>& allFrameworks();

/** Stable display name, e.g. "TensorFlow". */
std::string frameworkName(FrameworkId id);

/** Lookup by display name; throws if unknown. */
FrameworkId frameworkByName(const std::string& name);

/**
 * Frameworks that can drive @p device (Table III "Platform" row).
 */
std::vector<FrameworkId> frameworksFor(hw::DeviceId device);

/**
 * Calibrated execution profile of @p fw on @p device; throws
 * InvalidArgumentError for unsupported pairs. Anchored to the
 * latencies the paper reports (see EXPERIMENTS.md).
 */
hw::EngineProfile engineProfile(FrameworkId fw, hw::DeviceId device);

} // namespace frameworks
} // namespace edgebench

#endif // EDGEBENCH_FRAMEWORKS_FRAMEWORK_HH
