#include "edgebench/frameworks/framework.hh"

#include <algorithm>
#include <array>

#include "edgebench/core/common.hh"
#include "edgebench/graph/passes.hh"

namespace edgebench
{
namespace frameworks
{

namespace
{

/** Table II, encoded. */
std::vector<Framework>
buildRegistry()
{
    std::vector<Framework> fws;

    fws.emplace_back(FrameworkId::kTensorFlow, "TensorFlow",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = true, .usability = 3,
            .addingNewModels = 2, .preDefinedModels = 3,
            .documentation = 2, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 2,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = true, .fusion = true,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 2.2, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kTfLite, "TFLite",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = false, .usability = 1,
            .addingNewModels = 1, .preDefinedModels = 1,
            .documentation = 1, .noExtraSteps = false,
            .mobileDeployment = true, .lowLevelModifications = 1,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = true, .fusion = true,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 1.1, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kKeras, "Keras",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = true, .usability = 3,
            .addingNewModels = 3, .preDefinedModels = 3,
            .documentation = 3, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 1,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = true, .fusion = false,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 2.3, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kCaffe, "Caffe",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = true, .usability = 2,
            .addingNewModels = 3, .preDefinedModels = 2,
            .documentation = 1, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 2,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = false, .fusion = false,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 1.8, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kMovidiusNcsdk, "Movidius",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = false, .usability = 1,
            .addingNewModels = 1, .preDefinedModels = 1,
            .documentation = 1, .noExtraSteps = false,
            .mobileDeployment = true, .lowLevelModifications = 1,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = false, .fusion = true,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 1.2, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kPyTorch, "PyTorch",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = true, .usability = 3,
            .addingNewModels = 3, .preDefinedModels = 3,
            .documentation = 3, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 1,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = true,
            .pruningExploit = false, .fusion = false,
            .autoTuning = false, .halfPrecision = true,
            .memoryOverheadFactor = 1.4, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kTensorRt, "TensorRT",
        FrameworkTraits{
            .language = "Python", .industryBacked = true,
            .trainingFramework = false, .usability = 2,
            .addingNewModels = 2, .preDefinedModels = 2,
            .documentation = 1, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 1,
            .compatibilityWithOthers = 2, .quantization = true,
            .mixedPrecision = true, .dynamicGraph = true,
            .pruningExploit = true, .fusion = true,
            .autoTuning = true, .halfPrecision = true,
            .memoryOverheadFactor = 1.1, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kDarkNet, "DarkNet",
        FrameworkTraits{
            .language = "C", .industryBacked = false,
            .trainingFramework = true, .usability = 2,
            .addingNewModels = 3, .preDefinedModels = 2,
            .documentation = 1, .noExtraSteps = true,
            .mobileDeployment = false, .lowLevelModifications = 3,
            .compatibilityWithOthers = 1, .quantization = false,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = false, .fusion = false,
            .autoTuning = false, .halfPrecision = false,
            .memoryOverheadFactor = 1.2, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kTvmVta, "TVM VTA",
        FrameworkTraits{
            .language = "Python", .industryBacked = false,
            .trainingFramework = false, .usability = 1,
            .addingNewModels = 1, .preDefinedModels = 1,
            .documentation = 1, .noExtraSteps = false,
            .mobileDeployment = true, .lowLevelModifications = 3,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = false, .fusion = true,
            .autoTuning = true, .halfPrecision = false,
            .memoryOverheadFactor = 1.1, .swapPenaltyFactor = 12.0});

    fws.emplace_back(FrameworkId::kFinn, "FINN",
        FrameworkTraits{
            .language = "Python", .industryBacked = false,
            .trainingFramework = false, .usability = 1,
            .addingNewModels = 1, .preDefinedModels = 1,
            .documentation = 1, .noExtraSteps = false,
            .mobileDeployment = true, .lowLevelModifications = 3,
            .compatibilityWithOthers = 1, .quantization = true,
            .mixedPrecision = false, .dynamicGraph = false,
            .pruningExploit = false, .fusion = true,
            .autoTuning = false, .halfPrecision = false,
            .memoryOverheadFactor = 1.0, .swapPenaltyFactor = 12.0});

    return fws;
}

const std::vector<Framework>&
registry()
{
    static const auto fws = buildRegistry();
    return fws;
}

bool
isNvidiaGpuDevice(hw::DeviceId d)
{
    switch (d) {
      case hw::DeviceId::kJetsonTx2:
      case hw::DeviceId::kJetsonNano:
      case hw::DeviceId::kRtx2080:
      case hw::DeviceId::kGtxTitanX:
      case hw::DeviceId::kTitanXp:
        return true;
      default:
        return false;
    }
}

} // namespace

Framework::Framework(FrameworkId id, std::string name,
                     FrameworkTraits traits)
    : id_(id), name_(std::move(name)), traits_(std::move(traits))
{
}

bool
Framework::supportsDevice(hw::DeviceId device) const
{
    // Accelerator platforms are captive to their toolkits (Table III
    // "Platform" row).
    switch (device) {
      case hw::DeviceId::kEdgeTpu:
        return id_ == FrameworkId::kTfLite;
      case hw::DeviceId::kMovidius:
        return id_ == FrameworkId::kMovidiusNcsdk;
      case hw::DeviceId::kPynqZ1:
        return id_ == FrameworkId::kTvmVta || id_ == FrameworkId::kFinn;
      default:
        break;
    }
    switch (id_) {
      case FrameworkId::kMovidiusNcsdk:
      case FrameworkId::kTvmVta:
      case FrameworkId::kFinn:
        return false; // captive toolkits, handled above
      case FrameworkId::kTfLite:
        // Mobile/IoT wrapper: CPU edge boards only.
        return device == hw::DeviceId::kRpi3;
      case FrameworkId::kTensorRt:
        return isNvidiaGpuDevice(device);
      default:
        return true; // TF, Caffe, PyTorch, DarkNet run everywhere else
    }
}

namespace
{

/** True when the graph contains 3D convolutions. */
bool
hasConv3d(const graph::Graph& g)
{
    for (const auto& n : g.nodes())
        if (n.kind == graph::OpKind::kConv3d)
            return true;
    return false;
}

/** True when the graph contains partially grouped convolutions. */
bool
hasPartialGroups(const graph::Graph& g)
{
    for (const auto& n : g.nodes()) {
        if (n.kind != graph::OpKind::kConv2d &&
            n.kind != graph::OpKind::kFusedConvBnAct)
            continue;
        const auto& c = n.attrs.conv2d;
        if (c.groups > 1 && c.groups != c.inC)
            return true;
    }
    return false;
}

bool
hasRecurrent(const graph::Graph& g)
{
    for (const auto& n : g.nodes())
        if (n.kind == graph::OpKind::kLstm ||
            n.kind == graph::OpKind::kGru)
            return true;
    return false;
}

bool
hasDetectPostprocess(const graph::Graph& g)
{
    for (const auto& n : g.nodes())
        if (n.kind == graph::OpKind::kDetectPostprocess)
            return true;
    return false;
}

bool
hasYoloHead(const graph::Graph& g)
{
    for (const auto& n : g.nodes())
        if (n.kind == graph::OpKind::kYoloDetect)
            return true;
    return false;
}

} // namespace

const hw::ComputeUnit&
CompiledModel::computeUnit() const
{
    const auto& spec = hw::deviceSpec(device);
    switch (unit) {
      case hw::UnitKind::kCpu:
        return spec.cpu;
      case hw::UnitKind::kGpu:
        EB_CHECK(spec.gpu.has_value(),
                 "compiled for missing GPU on " << spec.name);
        return *spec.gpu;
      case hw::UnitKind::kAccelerator:
        EB_CHECK(spec.accelerator.has_value(),
                 "compiled for missing accelerator on " << spec.name);
        return *spec.accelerator;
    }
    throw InternalError("CompiledModel: bad unit kind");
}

hw::GraphCost
CompiledModel::latency() const
{
    hw::GraphCost c =
        hw::graphLatencyUnchecked(graph, computeUnit(), profile);
    if (swapFactor > 1.0) {
        c.totalMs *= swapFactor;
        c.memoryMs *= swapFactor;
    }
    return c;
}

CompiledModel
Framework::compile(const graph::Graph& model, hw::DeviceId device,
                   const CompileOptions& options) const
{
    if (!supportsDevice(device)) {
        throw CompatibilityError(name_ + " cannot target " +
                                 hw::deviceName(device));
    }

    // --- Table V op-support / conversion rules -----------------------
    if (device == hw::DeviceId::kRpi3 && hasDetectPostprocess(model)) {
        // The paper hits code incompatibilities for SSD's extra image
        // processing library on the RPi (Table V, "O").
        throw CompatibilityError(
            "SSD post-processing library is incompatible with RPi (" +
            model.name() + ")");
    }
    if (id_ == FrameworkId::kMovidiusNcsdk && hasConv3d(model)) {
        // NCSDK has no 3D-convolution support (paper Section VI-A).
        throw CompatibilityError("NCSDK cannot compile 3D convolutions (" +
                                 model.name() + ")");
    }
    if (id_ == FrameworkId::kMovidiusNcsdk && hasRecurrent(model)) {
        throw CompatibilityError(
            "NCSDK cannot compile recurrent layers (" + model.name() +
            ")");
    }
    if (id_ == FrameworkId::kTfLite &&
        (hasConv3d(model) || hasYoloHead(model) ||
         hasRecurrent(model))) {
        // The 2019-era TFLite converter has no 3D-conv or YOLO-region
        // op support.
        throw CompatibilityError(
            "TFLite converter: unsupported ops in " + model.name());
    }
    if (device == hw::DeviceId::kEdgeTpu) {
        // EdgeTPU compiler barriers (Table V, "4"): every op must be
        // INT8-quantizable and dense/depthwise; additionally the paper
        // could not obtain quantization-aware checkpoints for a few
        // models (ResNet-18).
        if (hasConv3d(model) || hasYoloHead(model) ||
            hasRecurrent(model)) {
            throw CompatibilityError(
                "EdgeTPU compiler: model contains ops without "
                "quantized support (" + model.name() + ")");
        }
        if (hasPartialGroups(model)) {
            throw CompatibilityError(
                "EdgeTPU compiler: partially grouped convolutions are "
                "unsupported (" + model.name() + ")");
        }
        if (model.name() == "ResNet-18") {
            throw CompatibilityError(
                "EdgeTPU: no quantization-aware-trained checkpoint "
                "could be produced for ResNet-18 (paper Section "
                "VI-A, barrier 4)");
        }
    }
    if (device == hw::DeviceId::kPynqZ1) {
        // The paper only brings up CifarNet/ResNet-18-class models on
        // the FPGA stacks; everything else fails to compile or needs
        // retraining (Section VI-A footnote 5).
        const bool feasible = model.name() == "CifarNet" ||
            model.name() == "ResNet-18";
        if (!feasible) {
            throw CompatibilityError(
                name_ + " on PYNQ: model " + model.name() +
                " exceeds the VTA/FINN compilable subset");
        }
    }

    CompiledModel out;
    out.framework = id_;
    out.device = device;
    out.graph = model;

    // --- Optimization pipeline (Table II) ----------------------------
    // TensorFlow's fusion is marked "experimental implementation" in
    // Table II (footnote ++): it exists but is not engaged in the
    // deployments the paper measures, so we do not apply it either.
    if (traits_.fusion && id_ != FrameworkId::kTensorFlow)
        out.graph = graph::fuseConvBnAct(out.graph).graph;
    if (!traits_.dynamicGraph)
        out.graph = graph::eliminateDeadNodes(out.graph).graph;
    if (options.pruneFraction > 0.0)
        out.graph = graph::pruneWeights(out.graph,
                                        options.pruneFraction).graph;

    // EdgeTPU and the FPGA stacks require quantized deployment;
    // TFLite quantizes by default (its standard deployment mode, per
    // the paper's footnote about quantized weights).
    const bool forced_quantize = device == hw::DeviceId::kEdgeTpu ||
        id_ == FrameworkId::kTvmVta || id_ == FrameworkId::kFinn;
    const bool quantize = forced_quantize ||
        options.quantizeInt8.value_or(id_ == FrameworkId::kTfLite);
    EB_CHECK(!quantize || traits_.quantization,
             name_ << " does not implement INT8 quantization");
    if (quantize) {
        out.graph = graph::quantizeInt8(out.graph).graph;
    } else {
        const bool fp16_default =
            id_ == FrameworkId::kTensorRt ||
            id_ == FrameworkId::kMovidiusNcsdk;
        const bool fp16 = options.useFp16.value_or(fp16_default);
        if (fp16) {
            EB_CHECK(traits_.halfPrecision,
                     name_ << " does not implement FP16 inference");
            out.graph = graph::convertToF16(out.graph).graph;
        }
    }

    // --- Unit selection ----------------------------------------------
    const auto& spec = hw::deviceSpec(device);
    if (spec.accelerator &&
        (device == hw::DeviceId::kEdgeTpu ||
         device == hw::DeviceId::kMovidius ||
         device == hw::DeviceId::kPynqZ1)) {
        out.unit = hw::UnitKind::kAccelerator;
    } else if (spec.gpu) {
        out.unit = hw::UnitKind::kGpu;
    } else {
        out.unit = hw::UnitKind::kCpu;
    }

    out.profile = engineProfile(id_, device);
    if (traits_.pruningExploit)
        out.profile.exploitsSparsity = true;

    // --- Memory-capacity policy (Table V memory marks) ---------------
    const double footprint =
        graph::deploymentFootprintBytes(out.graph) *
        traits_.memoryOverheadFactor;
    const double capacity = out.computeUnit().memCapacityBytes;
    if (footprint > capacity) {
        if (traits_.dynamicGraph) {
            // PyTorch-style dynamic graphs page through memory at an
            // order-of-magnitude latency cost (Table V "^").
            out.swapFactor = traits_.swapPenaltyFactor;
            out.usedDynamicGraphFallback = true;
        } else {
            std::ostringstream oss;
            oss << name_ << " on " << spec.name << ": " << model.name()
                << " needs "
                << footprint / (1024.0 * 1024.0) << " MiB (incl. "
                << traits_.memoryOverheadFactor
                << "x runtime overhead) but only "
                << capacity / (1024.0 * 1024.0) << " MiB available";
            throw MemoryCapacityError(oss.str());
        }
    }
    return out;
}

const Framework&
framework(FrameworkId id)
{
    for (const auto& f : registry())
        if (f.id() == id)
            return f;
    throw InternalError("framework: unknown id");
}

const std::vector<FrameworkId>&
allFrameworks()
{
    static const std::vector<FrameworkId> ids = [] {
        std::vector<FrameworkId> v;
        for (const auto& f : registry())
            v.push_back(f.id());
        return v;
    }();
    return ids;
}

std::string
frameworkName(FrameworkId id)
{
    return framework(id).name();
}

FrameworkId
frameworkByName(const std::string& name)
{
    for (const auto& f : registry())
        if (f.name() == name)
            return f.id();
    throw InvalidArgumentError("frameworkByName: unknown framework '" +
                               name + "'");
}

std::vector<FrameworkId>
frameworksFor(hw::DeviceId device)
{
    std::vector<FrameworkId> out;
    for (const auto& f : registry())
        if (f.supportsDevice(device))
            out.push_back(f.id());
    return out;
}

} // namespace frameworks
} // namespace edgebench
