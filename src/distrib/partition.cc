#include "edgebench/distrib/partition.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace distrib
{

double
LinkModel::uploadMs(double bytes) const
{
    EB_CHECK(uplinkMBs > 0.0, "link: non-positive bandwidth");
    return bytes / (uplinkMBs * 1e6) * 1e3 + oneWayLatencyMs;
}

LinkModel
wifiLink()
{
    return {5.0, 5.0, 0.8};
}

LinkModel
lteLink()
{
    return {1.0, 35.0, 1.2};
}

LinkModel
lanLink()
{
    return {50.0, 1.0, 0.5};
}

PartitionResult
partition(const frameworks::CompiledModel& edge,
          const frameworks::CompiledModel& cloud,
          const LinkModel& link)
{
    // Cut enumeration happens on the edge compilation's graph; the
    // cloud side prices the same operators with its own unit/profile.
    const graph::Graph& g = edge.graph;
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    EB_CHECK(n_nodes > 0, "partition: empty graph");

    const auto edge_ms =
        hw::perNodeTotalMs(g, edge.computeUnit(), edge.profile);
    const auto cloud_ms =
        hw::perNodeTotalMs(g, cloud.computeUnit(), cloud.profile);

    // Prefix sums (with the edge swap penalty applied uniformly).
    std::vector<double> edge_prefix(n_nodes + 1, 0.0);
    std::vector<double> cloud_prefix(n_nodes + 1, 0.0);
    for (std::size_t i = 0; i < n_nodes; ++i) {
        edge_prefix[i + 1] =
            edge_prefix[i] + edge_ms[i] * edge.swapFactor;
        cloud_prefix[i + 1] = cloud_prefix[i] + cloud_ms[i];
    }
    const double edge_all = edge_prefix[n_nodes] +
        edge.profile.perInferenceOverheadMs;
    const double cloud_all = cloud_prefix[n_nodes] +
        cloud.profile.perInferenceOverheadMs;

    // For each node, the index of its last consumer.
    std::vector<graph::NodeId> last_consumer(n_nodes, -1);
    for (const auto& n : g.nodes())
        for (auto in : n.inputs)
            last_consumer[static_cast<std::size_t>(in)] =
                std::max(last_consumer[static_cast<std::size_t>(in)],
                         n.id);
    graph::NodeId min_output_id =
        static_cast<graph::NodeId>(n_nodes);
    for (auto id : g.outputIds())
        min_output_id = std::min(min_output_id, id);

    const auto& edge_spec = hw::deviceSpec(edge.device);

    auto make_split = [&](graph::NodeId cut_after,
                          graph::NodeId boundary,
                          double crossing_bytes) {
        SplitPoint s;
        s.cutAfter = cut_after;
        s.crossingBytes = crossing_bytes;
        if (cut_after >= 0) {
            s.boundaryName =
                g.node(boundary >= 0 ? boundary : cut_after).name;
            s.edgeMs =
                edge_prefix[static_cast<std::size_t>(cut_after) + 1] +
                edge.profile.perInferenceOverheadMs;
        }
        s.uploadMs = link.uploadMs(crossing_bytes);
        s.cloudMs = cloud_all -
            (cut_after >= 0
                 ? cloud_prefix[static_cast<std::size_t>(cut_after) +
                                1]
                 : 0.0);
        s.totalMs = s.edgeMs + s.uploadMs + s.cloudMs;
        s.edgeEnergyMJ = s.edgeMs * edge_spec.averagePowerW +
            s.uploadMs * (edge_spec.idlePowerW + link.txPowerW);
        return s;
    };

    PartitionResult result;
    result.edgeOnlyMs = edge_all;

    // Cloud-only: ship the raw input(s).
    double input_bytes = 0.0;
    for (auto id : g.inputIds())
        input_bytes += g.node(id).outputBytes();
    result.cloudOnlyMs = link.uploadMs(input_bytes) + cloud_all;
    result.candidates.push_back(make_split(-1, -1, input_bytes));

    // Linear interior cuts.
    for (std::size_t i = 0; i < n_nodes - 1; ++i) {
        const auto cut = static_cast<graph::NodeId>(i);
        if (cut >= min_output_id)
            break; // a graph output would sit on the edge side
        graph::NodeId crossing = -1;
        bool linear = true;
        for (std::size_t p = 0; p <= i && linear; ++p) {
            if (last_consumer[p] > cut) {
                if (crossing >= 0)
                    linear = false;
                else
                    crossing = static_cast<graph::NodeId>(p);
            }
        }
        if (!linear || crossing < 0)
            continue;
        result.candidates.push_back(make_split(
            cut, crossing, g.node(crossing).outputBytes()));
    }

    // Edge-only pseudo-split: everything on the edge, ship nothing.
    {
        SplitPoint s;
        s.cutAfter = static_cast<graph::NodeId>(n_nodes - 1);
        s.boundaryName = "(edge only)";
        s.edgeMs = edge_all;
        s.totalMs = edge_all;
        s.edgeEnergyMJ = edge_all * edge_spec.averagePowerW;
        result.candidates.push_back(s);
    }

    result.best = *std::min_element(
        result.candidates.begin(), result.candidates.end(),
        [](const SplitPoint& a, const SplitPoint& b) {
            return a.totalMs < b.totalMs;
        });
    result.bestEnergy = *std::min_element(
        result.candidates.begin(), result.candidates.end(),
        [](const SplitPoint& a, const SplitPoint& b) {
            return a.edgeEnergyMJ < b.edgeEnergyMJ;
        });
    return result;
}

namespace
{

/** A contiguous run of nodes between two adjacent linear cuts. */
struct Segment
{
    double workMs = 0.0;       ///< node time inside the segment
    double outBytes = 0.0;     ///< crossing tensor if cut after it
    graph::NodeId boundary = -1;
    std::string boundaryName;
};

/**
 * Split the graph into segments delimited by its linear cut points
 * (positions where exactly one tensor crosses).
 */
std::vector<Segment>
linearSegments(const graph::Graph& g,
               const std::vector<double>& node_ms)
{
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    std::vector<graph::NodeId> last_consumer(n_nodes, -1);
    for (const auto& n : g.nodes())
        for (auto in : n.inputs)
            last_consumer[static_cast<std::size_t>(in)] =
                std::max(last_consumer[static_cast<std::size_t>(in)],
                         n.id);
    graph::NodeId min_output_id =
        static_cast<graph::NodeId>(n_nodes);
    for (auto id : g.outputIds())
        min_output_id = std::min(min_output_id, id);

    std::vector<Segment> segments;
    Segment current;
    // Running count of producers whose values still cross forward.
    for (std::size_t i = 0; i < n_nodes; ++i) {
        current.workMs += node_ms[i];
        const auto cut = static_cast<graph::NodeId>(i);
        if (cut >= min_output_id)
            continue;
        graph::NodeId crossing = -1;
        bool linear = true;
        for (std::size_t p = 0; p <= i && linear; ++p) {
            if (last_consumer[p] > cut) {
                if (crossing >= 0)
                    linear = false;
                else
                    crossing = static_cast<graph::NodeId>(p);
            }
        }
        if (linear && crossing >= 0) {
            current.outBytes = g.node(crossing).outputBytes();
            current.boundary = crossing;
            current.boundaryName = g.node(crossing).name;
            segments.push_back(current);
            current = Segment{};
        }
    }
    // Tail segment (up to the outputs); no crossing tensor.
    segments.push_back(current);
    return segments;
}

/** Greedy feasibility: can the segments fit in <= k stages of <= B? */
bool
feasible(const std::vector<Segment>& segments, const LinkModel& link,
         int k, double bottleneck, PipelineResult* out)
{
    std::vector<double> stage_ms;
    std::vector<double> transfer_ms;
    std::vector<std::string> boundaries;
    double acc = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const auto& s = segments[i];
        if (s.workMs > bottleneck + 1e-12)
            return false; // indivisible chunk larger than the budget
        if (acc + s.workMs > bottleneck + 1e-12) {
            // Close the stage before this segment.
            stage_ms.push_back(acc);
            transfer_ms.push_back(
                link.uploadMs(segments[i - 1].outBytes));
            boundaries.push_back(segments[i - 1].boundaryName);
            if (transfer_ms.back() > bottleneck + 1e-12)
                return false;
            acc = 0.0;
        }
        acc += s.workMs;
    }
    stage_ms.push_back(acc);
    if (static_cast<int>(stage_ms.size()) > k)
        return false;
    if (out) {
        out->stageMs = std::move(stage_ms);
        out->transferMs = std::move(transfer_ms);
        out->boundaries = std::move(boundaries);
    }
    return true;
}

} // namespace

PipelineResult
pipelinePartition(const frameworks::CompiledModel& device_model,
                  const LinkModel& link, int num_devices)
{
    EB_CHECK(num_devices >= 1,
             "pipelinePartition: need at least one device");
    const auto node_ms = hw::perNodeTotalMs(
        device_model.graph, device_model.computeUnit(),
        device_model.profile);
    std::vector<double> scaled(node_ms.size());
    for (std::size_t i = 0; i < node_ms.size(); ++i)
        scaled[i] = node_ms[i] * device_model.swapFactor;

    const auto segments = linearSegments(device_model.graph, scaled);

    // Binary-search the bottleneck over [max segment, total work].
    double lo = 0.0, total = 0.0;
    for (const auto& s : segments) {
        lo = std::max(lo, s.workMs);
        total += s.workMs;
        lo = std::max(lo, link.uploadMs(0.0)); // latency floor
    }
    double hi = total;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (feasible(segments, link, num_devices, mid, nullptr))
            hi = mid;
        else
            lo = mid;
    }

    PipelineResult result;
    result.devices = num_devices;
    EB_CHECK(feasible(segments, link, num_devices, hi, &result),
             "pipelinePartition: binary search failed to converge");
    double bottleneck = 0.0;
    double latency = device_model.profile.perInferenceOverheadMs;
    for (double s : result.stageMs) {
        bottleneck = std::max(bottleneck, s);
        latency += s;
    }
    for (double tr : result.transferMs) {
        bottleneck = std::max(bottleneck, tr);
        latency += tr;
    }
    result.bottleneckMs = bottleneck;
    result.throughputHz = 1e3 / bottleneck;
    result.latencyMs = latency;
    return result;
}

} // namespace distrib
} // namespace edgebench
