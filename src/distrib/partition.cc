#include "edgebench/distrib/partition.hh"

#include <algorithm>
#include <map>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace distrib
{

double
LinkModel::uploadMs(double bytes) const
{
    EB_CHECK(uplinkMBs > 0.0, "link: non-positive bandwidth");
    return bytes / (uplinkMBs * 1e6) * 1e3 + oneWayLatencyMs;
}

LinkModel
wifiLink()
{
    return {5.0, 5.0, 0.8};
}

LinkModel
lteLink()
{
    return {1.0, 35.0, 1.2};
}

LinkModel
lanLink()
{
    return {50.0, 1.0, 0.5};
}

std::vector<CutPoint>
linearCutPoints(const graph::Graph& g)
{
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());

    // For each node, the index of its last consumer.
    std::vector<graph::NodeId> last_consumer(n_nodes, -1);
    for (const auto& n : g.nodes())
        for (auto in : n.inputs)
            last_consumer[static_cast<std::size_t>(in)] =
                std::max(last_consumer[static_cast<std::size_t>(in)],
                         n.id);
    graph::NodeId min_output_id =
        static_cast<graph::NodeId>(n_nodes);
    for (auto id : g.outputIds())
        min_output_id = std::min(min_output_id, id);

    std::vector<CutPoint> cuts;
    for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
        const auto cut = static_cast<graph::NodeId>(i);
        if (cut >= min_output_id)
            break; // a graph output would sit before the boundary
        graph::NodeId crossing = -1;
        bool linear = true;
        for (std::size_t p = 0; p <= i && linear; ++p) {
            if (last_consumer[p] > cut) {
                if (crossing >= 0)
                    linear = false; // two tensors cross: not a cut
                else
                    crossing = static_cast<graph::NodeId>(p);
            }
        }
        if (linear && crossing >= 0)
            cuts.push_back({cut, crossing});
    }
    return cuts;
}

PartitionResult
partition(const frameworks::CompiledModel& edge,
          const frameworks::CompiledModel& cloud,
          const LinkModel& link)
{
    // Cut enumeration happens on the edge compilation's graph; the
    // cloud side prices the same operators with its own unit/profile.
    const graph::Graph& g = edge.graph;
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    EB_CHECK(n_nodes > 0, "partition: empty graph");

    const auto edge_ms =
        hw::perNodeTotalMs(g, edge.computeUnit(), edge.profile);
    const auto cloud_ms =
        hw::perNodeTotalMs(g, cloud.computeUnit(), cloud.profile);

    // Prefix sums (with the edge swap penalty applied uniformly).
    std::vector<double> edge_prefix(n_nodes + 1, 0.0);
    std::vector<double> cloud_prefix(n_nodes + 1, 0.0);
    for (std::size_t i = 0; i < n_nodes; ++i) {
        edge_prefix[i + 1] =
            edge_prefix[i] + edge_ms[i] * edge.swapFactor;
        cloud_prefix[i + 1] = cloud_prefix[i] + cloud_ms[i];
    }
    const double edge_all = edge_prefix[n_nodes] +
        edge.profile.perInferenceOverheadMs;
    const double cloud_all = cloud_prefix[n_nodes] +
        cloud.profile.perInferenceOverheadMs;

    const auto& edge_spec = hw::deviceSpec(edge.device);

    auto make_split = [&](graph::NodeId cut_after,
                          graph::NodeId boundary,
                          double crossing_bytes) {
        SplitPoint s;
        s.cutAfter = cut_after;
        s.crossingBytes = crossing_bytes;
        if (cut_after >= 0) {
            s.boundaryName =
                g.node(boundary >= 0 ? boundary : cut_after).name;
            s.edgeMs =
                edge_prefix[static_cast<std::size_t>(cut_after) + 1] +
                edge.profile.perInferenceOverheadMs;
        }
        s.uploadMs = link.uploadMs(crossing_bytes);
        s.cloudMs = cloud_all -
            (cut_after >= 0
                 ? cloud_prefix[static_cast<std::size_t>(cut_after) +
                                1]
                 : 0.0);
        s.totalMs = s.edgeMs + s.uploadMs + s.cloudMs;
        s.edgeEnergyMJ = s.edgeMs * edge_spec.averagePowerW +
            s.uploadMs * (edge_spec.idlePowerW + link.txPowerW);
        return s;
    };

    PartitionResult result;
    result.edgeOnlyMs = edge_all;

    // Cloud-only: ship the raw input(s).
    double input_bytes = 0.0;
    for (auto id : g.inputIds())
        input_bytes += g.node(id).outputBytes();
    result.cloudOnlyMs = link.uploadMs(input_bytes) + cloud_all;
    result.candidates.push_back(make_split(-1, -1, input_bytes));

    // Linear interior cuts.
    for (const auto& c : linearCutPoints(g))
        result.candidates.push_back(make_split(
            c.cutAfter, c.crossing, g.node(c.crossing).outputBytes()));

    // Edge-only pseudo-split: everything on the edge, ship nothing.
    {
        SplitPoint s;
        s.cutAfter = static_cast<graph::NodeId>(n_nodes - 1);
        s.boundaryName = "(edge only)";
        s.edgeMs = edge_all;
        s.totalMs = edge_all;
        s.edgeEnergyMJ = edge_all * edge_spec.averagePowerW;
        result.candidates.push_back(s);
    }

    result.best = *std::min_element(
        result.candidates.begin(), result.candidates.end(),
        [](const SplitPoint& a, const SplitPoint& b) {
            return a.totalMs < b.totalMs;
        });
    result.bestEnergy = *std::min_element(
        result.candidates.begin(), result.candidates.end(),
        [](const SplitPoint& a, const SplitPoint& b) {
            return a.edgeEnergyMJ < b.edgeEnergyMJ;
        });
    return result;
}

namespace
{

/** A contiguous run of nodes between two adjacent linear cuts. */
struct Segment
{
    double outBytes = 0.0; ///< crossing tensor if cut after it
    std::string boundaryName;
};

/**
 * Greedy feasibility: walk the segments in order, packing each stage
 * on the next device of the ordered list until the budget would
 * overflow, then pay the boundary transfer and move on. Can the
 * segments fit the device list with every stage and transfer <= B?
 */
bool
feasible(const std::vector<Segment>& segments,
         const std::vector<std::vector<double>>& seg_work,
         const LinkModel& link, double bottleneck, PipelineResult* out,
         std::vector<int>* stage_device)
{
    const auto k = seg_work.size();
    std::vector<double> stage_ms;
    std::vector<double> transfer_ms;
    std::vector<double> transfer_bytes;
    std::vector<std::string> boundaries;
    std::vector<int> stage_dev;
    std::size_t d = 0;
    double acc = 0.0;
    std::size_t in_stage = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        double w = seg_work[d][i];
        if (acc + w > bottleneck + 1e-12) {
            if (in_stage == 0)
                return false; // indivisible chunk above the budget
            // Close the stage before this segment.
            stage_ms.push_back(acc);
            stage_dev.push_back(static_cast<int>(d));
            transfer_ms.push_back(
                link.uploadMs(segments[i - 1].outBytes));
            transfer_bytes.push_back(segments[i - 1].outBytes);
            boundaries.push_back(segments[i - 1].boundaryName);
            if (transfer_ms.back() > bottleneck + 1e-12)
                return false;
            if (++d >= k)
                return false; // device list exhausted
            w = seg_work[d][i]; // re-price on the next device
            if (w > bottleneck + 1e-12)
                return false;
            acc = w;
            in_stage = 1;
        } else {
            acc += w;
            ++in_stage;
        }
    }
    stage_ms.push_back(acc);
    stage_dev.push_back(static_cast<int>(d));
    if (out) {
        out->stageMs = std::move(stage_ms);
        out->transferMs = std::move(transfer_ms);
        out->transferBytes = std::move(transfer_bytes);
        out->boundaries = std::move(boundaries);
    }
    if (stage_device)
        *stage_device = std::move(stage_dev);
    return true;
}

} // namespace

PipelineResult
pipelinePartition(
    const std::vector<const frameworks::CompiledModel*>& devices,
    const LinkModel& link)
{
    EB_CHECK(!devices.empty(),
             "pipelinePartition: need at least one device");
    for (const auto* dev : devices)
        EB_CHECK(dev != nullptr, "pipelinePartition: null device");
    const graph::Graph& g = devices[0]->graph;
    const auto n_nodes = static_cast<std::size_t>(g.numNodes());
    EB_CHECK(n_nodes > 0, "pipelinePartition: empty graph");
    for (const auto* dev : devices)
        EB_CHECK(static_cast<std::size_t>(dev->graph.numNodes()) ==
                     n_nodes,
                 "pipelinePartition: stage compilations must share "
                 "one graph topology");

    const auto cuts = linearCutPoints(g);
    const std::size_t n_seg = cuts.size() + 1;
    const std::size_t k = devices.size();

    // Segment metadata (device-independent: topology only).
    std::vector<Segment> segments(n_seg);
    for (std::size_t j = 0; j < cuts.size(); ++j) {
        const auto& node = g.node(cuts[j].crossing);
        segments[j].outBytes = node.outputBytes();
        segments[j].boundaryName = node.name;
    }

    // Per-device segment work, each device priced with its own
    // roofline profile and swap penalty. Identical compilations (the
    // homogeneous overload passes the same pointer k times) share one
    // perNodeTotalMs evaluation.
    std::vector<std::vector<double>> seg_work(
        k, std::vector<double>(n_seg, 0.0));
    std::map<const frameworks::CompiledModel*, std::vector<double>>
        node_ms_cache;
    for (std::size_t d = 0; d < k; ++d) {
        auto it = node_ms_cache.find(devices[d]);
        if (it == node_ms_cache.end())
            it = node_ms_cache
                     .emplace(devices[d],
                              hw::perNodeTotalMs(
                                  g, devices[d]->computeUnit(),
                                  devices[d]->profile))
                     .first;
        const auto& node_ms = it->second;
        std::size_t j = 0;
        for (std::size_t i = 0; i < n_nodes; ++i) {
            seg_work[d][j] +=
                node_ms[i] * devices[d]->swapFactor;
            if (j < cuts.size() &&
                static_cast<graph::NodeId>(i) == cuts[j].cutAfter)
                ++j;
        }
    }

    // Binary-search the bottleneck. Lower bound: every segment must
    // run somewhere, so its cheapest placement bounds any stage
    // containing it; the link-latency floor applies only when a
    // second device exists — a single-device pipeline has no
    // transfers, so the floor must not constrain it.
    double lo = 0.0;
    if (k >= 2)
        lo = link.uploadMs(0.0);
    for (std::size_t j = 0; j < n_seg; ++j) {
        double cheapest = seg_work[0][j];
        for (std::size_t d = 1; d < k; ++d)
            cheapest = std::min(cheapest, seg_work[d][j]);
        lo = std::max(lo, cheapest);
    }
    double total0 = 0.0;
    for (std::size_t j = 0; j < n_seg; ++j)
        total0 += seg_work[0][j];
    // Everything on the first device is always feasible, but when the
    // latency floor exceeds total work the interval would invert —
    // keep lo <= hi so the search stays well-formed.
    double hi = std::max(total0, lo);
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (feasible(segments, seg_work, link, mid, nullptr, nullptr))
            hi = mid;
        else
            lo = mid;
    }

    PipelineResult result;
    result.devices = static_cast<int>(k);
    std::vector<int> stage_dev;
    EB_CHECK(
        feasible(segments, seg_work, link, hi, &result, &stage_dev),
        "pipelinePartition: binary search failed to converge");
    result.stageDevices.reserve(stage_dev.size());
    double bottleneck = 0.0;
    double latency = 0.0;
    for (std::size_t s = 0; s < result.stageMs.size(); ++s) {
        const auto* dev =
            devices[static_cast<std::size_t>(stage_dev[s])];
        result.stageDevices.push_back(dev->device);
        bottleneck = std::max(bottleneck, result.stageMs[s]);
        latency += result.stageMs[s] +
            dev->profile.perInferenceOverheadMs;
    }
    for (double tr : result.transferMs) {
        bottleneck = std::max(bottleneck, tr);
        latency += tr;
    }
    result.bottleneckMs = bottleneck;
    // A zero-work graph over a zero-latency link yields a zero
    // bottleneck; report a defined 0 Hz instead of dividing to inf.
    result.throughputHz = bottleneck > 0.0 ? 1e3 / bottleneck : 0.0;
    result.latencyMs = latency;
    return result;
}

PipelineResult
pipelinePartition(const frameworks::CompiledModel& device_model,
                  const LinkModel& link, int num_devices)
{
    EB_CHECK(num_devices >= 1,
             "pipelinePartition: need at least one device");
    const std::vector<const frameworks::CompiledModel*> devices(
        static_cast<std::size_t>(num_devices), &device_model);
    return pipelinePartition(devices, link);
}

} // namespace distrib
} // namespace edgebench
