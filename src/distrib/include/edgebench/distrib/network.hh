/**
 * @file
 * Stochastic network model for multi-device pipelines.
 *
 * Generalizes the closed-form LinkModel into a small discrete-event
 * sub-simulator the pipeline simulator (pipeline_sim.hh) drives:
 *
 *  - per-link bandwidth/latency with optional relative latency jitter
 *    drawn from a seeded RNG (deterministic for a fixed seed);
 *  - two medium modes: *switched* links are independent store-and-
 *    forward FIFO cables — a frame holds its link for the full
 *    serialization time plus latency, matching the analytic transfer
 *    period bytes/bw + latency — while a *shared* medium puts every
 *    active transfer in one broadcast domain under processor sharing
 *    (each of N concurrent transfers drains at bandwidth/N, then pays
 *    the propagation latency off-medium);
 *  - per-attempt loss with bounded retransmit and exponential backoff
 *    (the serving fleet's RetryPolicy shape on a millisecond
 *    timeline); a frame that exhausts its re-sends is dropped.
 *
 * The model owns no event heap: the driver asks nextEventMs() for the
 * earliest pending state change and calls advanceTo() to integrate up
 * to its own event times, so network completions interleave
 * deterministically with compute events. All times are milliseconds.
 */

#ifndef EDGEBENCH_DISTRIB_NETWORK_HH
#define EDGEBENCH_DISTRIB_NETWORK_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "edgebench/core/rng.hh"
#include "edgebench/distrib/partition.hh"

namespace edgebench
{
namespace distrib
{

/** Per-link characteristics (the stochastic face of LinkModel). */
struct LinkSpec
{
    /** Effective bandwidth, megabytes per second. */
    double bandwidthMBs = 50.0;
    /** One-way propagation latency, milliseconds. */
    double latencyMs = 1.0;
    /** Relative sigma of per-attempt latency jitter (0 = none). */
    double jitter = 0.0;
    /** Per-attempt probability a frame is lost in flight. */
    double lossRate = 0.0;
    /** Radio/NIC power while transmitting, Watts. */
    double txPowerW = 0.8;
};

/** Adapt an analytic LinkModel: same rate/latency, no loss/jitter. */
LinkSpec linkSpec(const LinkModel& link);

/** Bounded re-send behaviour for lost frames. */
struct RetransmitPolicy
{
    /** Re-send attempts after the first try (0 disables). */
    int maxAttempts = 3;
    /** Delay before the first re-send, milliseconds. */
    double backoffMs = 0.0;
    /** Multiplier applied per successive re-send (>= 1). */
    double backoffMult = 2.0;
};

/** How concurrent transfers interact. */
enum class MediumMode
{
    kSwitched, ///< independent full-duplex cables, FIFO per link
    kShared,   ///< one broadcast domain, processor-shared bandwidth
};

/** Network-scenario description. */
struct NetworkConfig
{
    /** Uniform link characteristics (used when perLink is empty). */
    LinkSpec link;
    /** Per-link override; size must equal the link count when set. */
    std::vector<LinkSpec> perLink;
    MediumMode medium = MediumMode::kSwitched;
    RetransmitPolicy retransmit;
};

/** A frame transfer that finished (delivered or dropped). */
struct Delivery
{
    std::int64_t id = -1;   ///< ticket from submit()
    int link = -1;
    bool delivered = false; ///< false = loss exhausted the re-sends
    int attempts = 1;       ///< tries consumed (1 = first try worked)
    double submittedMs = 0.0;
    double doneMs = 0.0;
};

/** Per-link counters. */
struct LinkStats
{
    std::int64_t transfers = 0;   ///< frames submitted
    std::int64_t retransmits = 0; ///< re-sends scheduled
    std::int64_t drops = 0;       ///< frames lost for good
    double busyMs = 0.0;          ///< time the link was occupied
    double txEnergyMJ = 0.0;      ///< busyMs x txPowerW
};

class NetworkModel
{
  public:
    NetworkModel(const NetworkConfig& config, int num_links,
                 std::uint64_t seed);

    int numLinks() const { return static_cast<int>(links_.size()); }
    const LinkSpec& spec(int link) const;

    /**
     * Submit a frame of @p bytes on @p link at @p now_ms; returns a
     * ticket matched by a later Delivery. now_ms must not precede a
     * previous advanceTo().
     */
    std::int64_t submit(int link, double bytes, double now_ms);

    /**
     * Earliest time any transfer changes state (drain completes,
     * delivery lands, a backed-off re-send becomes eligible), or
     * +infinity when the network is idle.
     */
    double nextEventMs() const;

    /**
     * Integrate up to @p now_ms and return the transfers that
     * finished, in completion order.
     */
    std::vector<Delivery> advanceTo(double now_ms);

    /** Frames in flight or queued on @p link (retransmits included). */
    std::int64_t inFlight(int link) const;

    const std::vector<LinkStats>& stats() const { return stats_; }

  private:
    /** One frame somewhere between submit and delivery/drop. */
    struct Transfer
    {
        std::int64_t id = -1;
        int link = -1;
        double bytes = 0.0;
        double submittedMs = 0.0;
        int attempts = 0;  ///< tries started
        double readyMs = 0.0;      ///< pending: eligible to start
        double remainingBytes = 0; ///< shared mode: left to drain
        double doneMs = 0.0;       ///< active/tail: completion time
    };

    void start(Transfer t, double now_ms);
    void kick(double now_ms);
    /** Loss draw at delivery; re-queues or finalizes the transfer. */
    void resolve(Transfer t, double t_ms,
                 std::vector<Delivery>* out);
    double effectiveLatencyMs(int link);

    struct LinkState
    {
        std::optional<Transfer> active; ///< switched mode
        std::deque<Transfer> pending;   ///< waiting for the link
        int draining = 0;               ///< shared mode membership
    };

    NetworkConfig config_;
    std::vector<LinkState> links_;
    std::vector<LinkStats> stats_;
    /** Shared mode: transfers draining the common medium. */
    std::vector<Transfer> draining_;
    /** Shared mode: drained transfers riding the latency tail. */
    std::vector<Transfer> tail_;
    /** Completions produced by submit()'s internal advance, held for
        the next advanceTo() so none are lost. */
    std::vector<Delivery> buffered_;
    core::Rng rng_;
    double nowMs_ = 0.0;
    std::int64_t nextId_ = 0;
};

} // namespace distrib
} // namespace edgebench

#endif // EDGEBENCH_DISTRIB_NETWORK_HH
