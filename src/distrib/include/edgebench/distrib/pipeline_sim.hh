/**
 * @file
 * Event-driven executor for pipelined multi-device inference.
 *
 * Takes the analytic plan a pipelinePartition() search produced and
 * runs it frame by frame on the serving discrete-event engine: one
 * replica per stage (heterogeneous CompiledModels allowed), frames
 * crossing stage boundaries over a NetworkModel (per-link jitter,
 * loss with bounded retransmit, switched or shared medium), bounded
 * inter-stage queues with the fleet's admission policies, per-stage
 * thermal/energy walkers, and per-stage/per-link obs trace lanes.
 *
 * Under a lossless, jitterless switched network with backpressure the
 * simulator reproduces the plan's analytic steady-state throughput
 * (the validation the test suite pins at 1%); loss, jitter, and
 * shared-medium contention then degrade it for reasons the closed
 * form cannot see — that gap is the point of the simulator.
 *
 * Timeline is milliseconds (the analytic plan's unit); the thermal
 * walkers run on seconds and convert at the boundary.
 */

#ifndef EDGEBENCH_DISTRIB_PIPELINE_SIM_HH
#define EDGEBENCH_DISTRIB_PIPELINE_SIM_HH

#include <cstdint>
#include <vector>

#include "edgebench/distrib/network.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/obs/trace.hh"
#include "edgebench/serving/fleet.hh"

namespace edgebench
{
namespace distrib
{

/** Pipeline-scenario description. */
struct PipelineSimConfig
{
    /** Frames offered to the pipeline. */
    std::int64_t frames = 1000;
    /**
     * Frame source rate, Hz. 0 = closed loop: a new frame enters the
     * moment the first stage's queue has room (steady-state
     * throughput measurement). Positive = open loop with evenly
     * spaced arrivals (a camera).
     */
    double sourceHz = 0.0;
    /** Per-stage input-queue capacity (>= 1). */
    std::size_t queueCapacity = 4;
    /**
     * When false, a stage does not start a frame until the downstream
     * queue has a slot reserved for it (backpressure: nothing is ever
     * dropped at a queue). When true, stages run freely and the fleet
     * drop policy applies when a frame lands on a full queue.
     */
    bool dropOnFull = false;
    /** Admission policy for full queues when dropOnFull is set. */
    serving::DropPolicy dropPolicy = serving::DropPolicy::kRejectNew;
    /** Relative per-frame service-time jitter (sigma, 0 = none). */
    double serviceJitter = 0.0;
    /** RNG seed (service jitter; the network derives its own). */
    std::uint64_t seed = 1;
    /** Couple stages to their device thermal models if available. */
    bool enableThermal = false;
    double ambientC = 25.0;
    /**
     * Optional trace sink. Lane 0 is "pipeline" (admissions, drops);
     * each stage and each link claims its own lane via ensureLane.
     */
    obs::Tracer* tracer = nullptr;
};

/** Per-stage outcome. */
struct StageReport
{
    hw::DeviceId device = hw::DeviceId::kRpi3;
    std::int64_t framesIn = 0;  ///< frames dequeued into service
    std::int64_t framesOut = 0; ///< frames completed by this stage
    std::int64_t queueDrops = 0;
    double busyMs = 0.0;
    double utilization = 0.0;      ///< busyMs over the window
    double meanQueueDepth = 0.0;   ///< time-weighted
    double peakQueueDepth = 0.0;
    double energyJ = 0.0;
    double peakSurfaceC = 0.0;
    bool thermalThrottled = false;
    bool thermalShutdown = false;
    double shutdownAtS = 0.0;
};

/** Per-link outcome (stage s -> stage s+1). */
struct LinkReport
{
    std::int64_t transfers = 0;
    std::int64_t retransmits = 0;
    std::int64_t lostFrames = 0; ///< re-sends exhausted
    double busyMs = 0.0;
    double utilization = 0.0;
    double txEnergyMJ = 0.0;
};

/** Outcome of a pipeline run. */
struct PipelineSimReport
{
    std::int64_t offered = 0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0; ///< queue + network + stranded frames
    double windowMs = 0.0;    ///< last event time
    /**
     * Steady-state completion rate, Hz: measured over the second half
     * of the completions so the pipeline-fill transient (during which
     * frames buffered behind the bottleneck exit faster than the
     * bottleneck period) does not bias the estimate.
     */
    double throughputHz = 0.0;
    /** End-to-end frame latency (admission to final stage), ms. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
    std::vector<StageReport> stages;
    std::vector<LinkReport> links;

    /** Every offered frame ends in exactly one bucket. */
    bool accountingConsistent() const
    {
        return offered == completed + dropped;
    }
};

/**
 * Execute @p plan with stage i served by @p stage_models[i] (size >=
 * plan.stageMs.size(), non-null, outliving the call; the device list
 * handed to pipelinePartition in the same order qualifies). Stage
 * service time is the plan's stageMs — the simulator executes the
 * analytic plan, it does not re-derive stage cost.
 */
PipelineSimReport simulatePipeline(
    const PipelineResult& plan,
    const std::vector<const frameworks::CompiledModel*>& stage_models,
    const NetworkConfig& net, const PipelineSimConfig& config);

/** Homogeneous pipeline: every stage runs @p model's deployment. */
PipelineSimReport simulatePipeline(const PipelineResult& plan,
                                   const frameworks::CompiledModel& model,
                                   const NetworkConfig& net,
                                   const PipelineSimConfig& config);

} // namespace distrib
} // namespace edgebench

#endif // EDGEBENCH_DISTRIB_PIPELINE_SIM_HH
