/**
 * @file
 * Cloud-edge DNN partitioning (Neurosurgeon-style, the paper's
 * reference [88] and one of the deployment strategies its
 * introduction motivates).
 *
 * Given a model compiled for an edge device and for a cloud platform,
 * plus a network link, evaluate every *linear cut point* — positions
 * in topological order where exactly one activation tensor crosses
 * the boundary — and select the split minimizing end-to-end latency
 * (or edge energy). Cut index 0 is cloud-only (ship the input), a cut
 * after the last node is edge-only.
 *
 * pipelinePartition generalizes the same cut machinery to pipelined
 * model parallelism across an *ordered device list* (the paper
 * authors' collaborative-IoT line): stage i of the pipeline runs on
 * devices[i], and each stage's budget is priced with that device's
 * own roofline profile and swap penalty, so a fast device absorbs
 * more layers than a slow one. The homogeneous overload is the
 * num_devices-copies special case. These are the analytic models; the
 * event-driven counterpart that executes a plan frame by frame over a
 * lossy/jittery network lives in pipeline_sim.hh.
 */

#ifndef EDGEBENCH_DISTRIB_PARTITION_HH
#define EDGEBENCH_DISTRIB_PARTITION_HH

#include <vector>

#include "edgebench/frameworks/framework.hh"

namespace edgebench
{
namespace distrib
{

/** Network link between the edge device and the cloud. */
struct LinkModel
{
    /** Effective uplink bandwidth, megabytes per second. */
    double uplinkMBs = 1.0;
    /** One-way latency, milliseconds. */
    double oneWayLatencyMs = 10.0;
    /** Radio/NIC power while transmitting, Watts. */
    double txPowerW = 0.8;

    /** Time to upload @p bytes (including one-way latency), ms. */
    double uploadMs(double bytes) const;
};

/** Common link presets. */
LinkModel wifiLink();   ///< 802.11n-class: 5 MB/s, 5 ms
LinkModel lteLink();    ///< LTE-class: 1 MB/s, 35 ms
LinkModel lanLink();    ///< wired LAN: 50 MB/s, 1 ms

/** One evaluated cut point. */
struct SplitPoint
{
    /** Nodes [0, cutAfter] run on the edge; -1 = cloud-only. */
    graph::NodeId cutAfter = -1;
    std::string boundaryName;    ///< node producing the crossing tensor
    double edgeMs = 0.0;         ///< edge-side compute time
    double uploadMs = 0.0;       ///< transfer time
    double cloudMs = 0.0;        ///< cloud-side compute time
    double totalMs = 0.0;
    double crossingBytes = 0.0;  ///< size of the shipped tensor
    double edgeEnergyMJ = 0.0;   ///< edge compute + radio energy
};

/** Result of a partition search. */
struct PartitionResult
{
    SplitPoint best;          ///< minimum-latency split
    SplitPoint bestEnergy;    ///< minimum-edge-energy split
    std::vector<SplitPoint> candidates; ///< all linear cuts evaluated
    double edgeOnlyMs = 0.0;
    double cloudOnlyMs = 0.0;
};

/**
 * Search all linear cut points of the model shared by @p edge and
 * @p cloud (both must be compilations of the same graph topology).
 */
PartitionResult partition(const frameworks::CompiledModel& edge,
                          const frameworks::CompiledModel& cloud,
                          const LinkModel& link);

/**
 * A position where the graph can be cut with exactly one activation
 * tensor crossing the boundary.
 */
struct CutPoint
{
    /** Nodes [0, cutAfter] sit before the cut. */
    graph::NodeId cutAfter = -1;
    /** The single node whose output crosses the cut. */
    graph::NodeId crossing = -1;
};

/**
 * Enumerate the linear cut points of @p g in topological order: cuts
 * where exactly one producer's tensor is still consumed on the far
 * side. Cuts that would strand a graph output before the boundary, or
 * where two or more tensors cross (branchy regions), are rejected.
 * Shared by partition() and pipelinePartition().
 */
std::vector<CutPoint> linearCutPoints(const graph::Graph& g);

/**
 * Pipelined model parallelism across an ordered list of edge devices
 * (the paper authors' collaborative-IoT line: distributing a DNN over
 * several Raspberry Pis to reach real-time rates). Stages are
 * contiguous layer ranges separated at linear cut points; stage i runs
 * on the i-th device of the list and is priced with that device's
 * profile, so heterogeneous lists yield unbalanced-by-design stages.
 * The steady-state pipeline rate is limited by the slowest stage or
 * inter-stage transfer.
 */
struct PipelineResult
{
    /** Devices available to the search (stages used may be fewer). */
    int devices = 1;
    /** Slowest stage-or-transfer, ms (pipeline period). */
    double bottleneckMs = 0.0;
    /** 1e3 / bottleneckMs; defined as 0 Hz for a zero-work plan. */
    double throughputHz = 0.0;
    /**
     * Single-frame latency: all stages + all transfers + each stage
     * device's per-inference overhead, ms.
     */
    double latencyMs = 0.0;
    std::vector<double> stageMs;
    std::vector<double> transferMs;
    /** Bytes crossing after each non-final stage (pairs transferMs). */
    std::vector<double> transferBytes;
    /** Name of the node closing each non-final stage. */
    std::vector<std::string> boundaries;
    /** Device running each stage (list order of the search input). */
    std::vector<hw::DeviceId> stageDevices;
};

/**
 * Heterogeneous pipeline search: stage i runs on @p devices[i] (all
 * entries non-null compilations of the same graph topology; list
 * order is pipeline order). Stage budgets use each device's own
 * roofline profile and swap penalty.
 */
PipelineResult pipelinePartition(
    const std::vector<const frameworks::CompiledModel*>& devices,
    const LinkModel& link);

/** Homogeneous pipeline: @p num_devices copies of one deployment. */
PipelineResult pipelinePartition(
    const frameworks::CompiledModel& device_model,
    const LinkModel& link, int num_devices);

} // namespace distrib
} // namespace edgebench

#endif // EDGEBENCH_DISTRIB_PARTITION_HH
