/**
 * @file
 * Cloud-edge DNN partitioning (Neurosurgeon-style, the paper's
 * reference [88] and one of the deployment strategies its
 * introduction motivates).
 *
 * Given a model compiled for an edge device and for a cloud platform,
 * plus a network link, evaluate every *linear cut point* — positions
 * in topological order where exactly one activation tensor crosses
 * the boundary — and select the split minimizing end-to-end latency
 * (or edge energy). Cut index 0 is cloud-only (ship the input), a cut
 * after the last node is edge-only.
 */

#ifndef EDGEBENCH_DISTRIB_PARTITION_HH
#define EDGEBENCH_DISTRIB_PARTITION_HH

#include <vector>

#include "edgebench/frameworks/framework.hh"

namespace edgebench
{
namespace distrib
{

/** Network link between the edge device and the cloud. */
struct LinkModel
{
    /** Effective uplink bandwidth, megabytes per second. */
    double uplinkMBs = 1.0;
    /** One-way latency, milliseconds. */
    double oneWayLatencyMs = 10.0;
    /** Radio/NIC power while transmitting, Watts. */
    double txPowerW = 0.8;

    /** Time to upload @p bytes (including one-way latency), ms. */
    double uploadMs(double bytes) const;
};

/** Common link presets. */
LinkModel wifiLink();   ///< 802.11n-class: 5 MB/s, 5 ms
LinkModel lteLink();    ///< LTE-class: 1 MB/s, 35 ms
LinkModel lanLink();    ///< wired LAN: 50 MB/s, 1 ms

/** One evaluated cut point. */
struct SplitPoint
{
    /** Nodes [0, cutAfter] run on the edge; -1 = cloud-only. */
    graph::NodeId cutAfter = -1;
    std::string boundaryName;    ///< node producing the crossing tensor
    double edgeMs = 0.0;         ///< edge-side compute time
    double uploadMs = 0.0;       ///< transfer time
    double cloudMs = 0.0;        ///< cloud-side compute time
    double totalMs = 0.0;
    double crossingBytes = 0.0;  ///< size of the shipped tensor
    double edgeEnergyMJ = 0.0;   ///< edge compute + radio energy
};

/** Result of a partition search. */
struct PartitionResult
{
    SplitPoint best;          ///< minimum-latency split
    SplitPoint bestEnergy;    ///< minimum-edge-energy split
    std::vector<SplitPoint> candidates; ///< all linear cuts evaluated
    double edgeOnlyMs = 0.0;
    double cloudOnlyMs = 0.0;
};

/**
 * Search all linear cut points of the model shared by @p edge and
 * @p cloud (both must be compilations of the same graph topology).
 */
PartitionResult partition(const frameworks::CompiledModel& edge,
                          const frameworks::CompiledModel& cloud,
                          const LinkModel& link);

/**
 * Pipelined model parallelism across @p num_devices identical edge
 * devices (the paper authors' collaborative-IoT line: distributing a
 * DNN over several Raspberry Pis to reach real-time rates). Stages
 * are contiguous layer ranges separated at linear cut points; the
 * steady-state pipeline rate is limited by the slowest stage or
 * inter-stage transfer.
 */
struct PipelineResult
{
    int devices = 1;
    /** Slowest stage-or-transfer, ms (pipeline period). */
    double bottleneckMs = 0.0;
    double throughputHz = 0.0;
    /** Single-frame latency: all stages + all transfers, ms. */
    double latencyMs = 0.0;
    std::vector<double> stageMs;
    std::vector<double> transferMs;
    /** Name of the node closing each non-final stage. */
    std::vector<std::string> boundaries;
};

PipelineResult pipelinePartition(
    const frameworks::CompiledModel& device_model,
    const LinkModel& link, int num_devices);

} // namespace distrib
} // namespace edgebench

#endif // EDGEBENCH_DISTRIB_PARTITION_HH
