#include "edgebench/distrib/pipeline_sim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/harness/stats.hh"
#include "edgebench/hw/device.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/serving/events.hh"
#include "edgebench/serving/walker.hh"

namespace edgebench
{
namespace distrib
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SimEvent
{
    enum Kind
    {
        kSourceArrival,
        kStageDone,
    };
    Kind kind = kSourceArrival;
    int stage = -1;
    std::int64_t frame = -1;
};

struct StageState
{
    const frameworks::CompiledModel* model = nullptr;
    double serviceMs = 0.0; ///< plan stage time (jitter multiplies it)
    std::deque<std::int64_t> queue;
    bool busy = false;
    bool down = false; ///< thermal shutdown observed
    std::int64_t inService = -1;
    double serviceStartMs = 0.0;
    double curServiceMs = 0.0;
    int lane = 0;
    // Time-weighted queue-occupancy accounting.
    double occAccum = 0.0;
    double occLastMs = 0.0;
    std::size_t occPeak = 0;
    StageReport report;
};

/**
 * The event loop executing one pipeline plan. Two event sources
 * interleave deterministically: the compute timeline (TimelineQueue)
 * and the network sub-simulator, merged by earliest-time with network
 * completions winning ties — a fixed rule, so runs are
 * bit-reproducible for a fixed seed.
 */
class PipelineEngine
{
  public:
    PipelineEngine(
        const PipelineResult& plan,
        const std::vector<const frameworks::CompiledModel*>& models,
        const NetworkConfig& net_config,
        const PipelineSimConfig& config)
        : plan_(plan),
          cfg_(config),
          tracer_(obs::kEnabledAtBuild ? config.tracer : nullptr),
          net_(net_config,
               static_cast<int>(plan.stageMs.size()) - 1,
               config.seed ^ 0x6e657477ull /* "netw" */),
          rng_(config.seed)
    {
        const std::size_t n_stages = plan_.stageMs.size();
        EB_CHECK(n_stages >= 1, "pipeline sim: plan has no stages");
        EB_CHECK(plan_.transferMs.size() + 1 == n_stages &&
                     plan_.transferBytes.size() + 1 == n_stages,
                 "pipeline sim: plan transfer arrays do not pair its "
                 "stages (was it produced by pipelinePartition?)");
        EB_CHECK(models.size() >= n_stages,
                 "pipeline sim: " << n_stages << " stages need "
                                  << n_stages << " stage models, got "
                                  << models.size());
        EB_CHECK(cfg_.frames >= 0, "pipeline sim: negative frames");
        EB_CHECK(cfg_.queueCapacity >= 1,
                 "pipeline sim: queue capacity must be >= 1");
        EB_CHECK(cfg_.sourceHz >= 0.0,
                 "pipeline sim: negative source rate");
        EB_CHECK(cfg_.serviceJitter >= 0.0,
                 "pipeline sim: negative service jitter");

        if (tracer_)
            tracer_->nameLane(0, "pipeline");
        stages_.resize(n_stages);
        for (std::size_t s = 0; s < n_stages; ++s) {
            auto& st = stages_[s];
            st.model = models[s];
            EB_CHECK(st.model != nullptr,
                     "pipeline sim: null stage model");
            st.serviceMs = plan_.stageMs[s];
            EB_CHECK(st.serviceMs >= 0.0,
                     "pipeline sim: negative stage time");
            st.report.device = st.model->device;
            const auto& spec = hw::deviceSpec(st.model->device);
            const double active_w =
                power::energyPerInference(*st.model).activePowerW;
            walkers_.emplace_back(st.model->device, cfg_.ambientC,
                                  spec.idlePowerW, active_w,
                                  cfg_.enableThermal);
            if (tracer_)
                st.lane = tracer_->ensureLane(
                    "stage " + std::to_string(s) + ": " +
                    hw::deviceName(st.model->device));
        }
        if (tracer_)
            for (std::size_t l = 0; l + 1 < n_stages; ++l)
                linkLanes_.push_back(tracer_->ensureLane(
                    "link " + std::to_string(l) + "->" +
                    std::to_string(l + 1)));
    }

    PipelineSimReport
    run()
    {
        if (cfg_.sourceHz > 0.0) {
            if (cfg_.frames > 0)
                events_.push(0.0, {SimEvent::kSourceArrival, -1, -1});
        } else {
            pump(0.0);
        }
        tryStartAll(0.0);

        for (;;) {
            const double tq =
                events_.empty() ? kInf : events_.topTime();
            const double tn = net_.nextEventMs();
            if (!std::isfinite(tq) && !std::isfinite(tn))
                break;
            if (tn <= tq) {
                for (auto& d : net_.advanceTo(tn))
                    onDelivery(d, tn);
                lastMs_ = std::max(lastMs_, tn);
            } else {
                for (auto& d : net_.advanceTo(tq))
                    onDelivery(d, tq);
                const SimEvent e = events_.pop();
                dispatch(e, tq);
                lastMs_ = std::max(lastMs_, tq);
            }
        }
        return finalize();
    }

  private:
    std::size_t numStages() const { return stages_.size(); }

    /** Time-weighted occupancy bookkeeping around a queue change. */
    void
    touchQueue(std::size_t s, double now_ms)
    {
        auto& st = stages_[s];
        st.occAccum += static_cast<double>(st.queue.size()) *
            (now_ms - st.occLastMs);
        st.occLastMs = now_ms;
    }

    void
    enqueue(std::size_t s, std::int64_t frame, double now_ms)
    {
        touchQueue(s, now_ms);
        stages_[s].queue.push_back(frame);
        stages_[s].occPeak =
            std::max(stages_[s].occPeak, stages_[s].queue.size());
    }

    /** Closed-loop source: fill stage 0's queue while frames remain. */
    void
    pump(double now_ms)
    {
        if (cfg_.sourceHz > 0.0)
            return;
        while (offered_ < cfg_.frames &&
               stages_[0].queue.size() < cfg_.queueCapacity)
            admit(now_ms);
    }

    void
    admit(double now_ms)
    {
        const auto id = offered_++;
        admittedMs_.push_back(now_ms);
        enqueue(0, id, now_ms);
    }

    /**
     * Downstream slots already spoken for: frames queued at s+1, in
     * flight on the link, and the one stage s itself is serving
     * (which will be submitted when it finishes).
     */
    std::size_t
    reservations(std::size_t s) const
    {
        return stages_[s + 1].queue.size() +
            static_cast<std::size_t>(
                net_.inFlight(static_cast<int>(s))) +
            (stages_[s].busy ? 1u : 0u);
    }

    void
    tryStartAll(double now_ms)
    {
        for (;;) {
            bool progressed = false;
            for (std::size_t s = 0; s < numStages(); ++s)
                progressed |= tryStart(s, now_ms);
            if (!progressed)
                break;
        }
    }

    bool
    tryStart(std::size_t s, double now_ms)
    {
        auto& st = stages_[s];
        if (st.busy || st.down || st.queue.empty())
            return false;
        // Backpressure: do not take a frame whose output could not
        // land downstream — nothing is ever dropped at a queue.
        if (!cfg_.dropOnFull && s + 1 < numStages() &&
            reservations(s) >= cfg_.queueCapacity)
            return false;

        auto& walker = walkers_[s];
        walker.advance(now_ms / 1e3);
        if (walker.shutdownAt()) {
            markDown(s, now_ms);
            return true; // queue state changed (frames stranded)
        }

        touchQueue(s, now_ms);
        const auto frame = st.queue.front();
        st.queue.pop_front();
        if (s == 0)
            pump(now_ms);

        double jitter = 1.0;
        if (cfg_.serviceJitter > 0.0)
            jitter = std::max(
                0.0, 1.0 + rng_.normal(0.0, cfg_.serviceJitter));
        const double service =
            st.serviceMs * jitter * walker.slowdown();
        st.busy = true;
        st.inService = frame;
        st.serviceStartMs = now_ms;
        st.curServiceMs = service;
        ++st.report.framesIn;
        walker.addBusy(now_ms / 1e3, (now_ms + service) / 1e3);
        events_.push(now_ms + service,
                     {SimEvent::kStageDone, static_cast<int>(s),
                      frame});
        return true;
    }

    /** Thermal shutdown: the stage is off; its queue is stranded. */
    void
    markDown(std::size_t s, double now_ms)
    {
        auto& st = stages_[s];
        if (st.down)
            return;
        st.down = true;
        touchQueue(s, now_ms);
        dropped_ += static_cast<std::int64_t>(st.queue.size());
        st.report.queueDrops +=
            static_cast<std::int64_t>(st.queue.size());
        st.queue.clear();
        if (tracer_)
            tracer_->instantAt("thermal_shutdown", "pipeline", now_ms,
                               st.lane);
    }

    void
    dispatch(const SimEvent& e, double now_ms)
    {
        switch (e.kind) {
        case SimEvent::kSourceArrival:
            onSourceArrival(now_ms);
            break;
        case SimEvent::kStageDone:
            onStageDone(static_cast<std::size_t>(e.stage), e.frame,
                        now_ms);
            break;
        }
        tryStartAll(now_ms);
    }

    void
    onSourceArrival(double now_ms)
    {
        if (offered_ >= cfg_.frames)
            return;
        // An open-loop source (a camera) cannot be backpressured: a
        // frame arriving at a full queue follows the drop policy.
        if (stages_[0].queue.size() >= cfg_.queueCapacity) {
            if (cfg_.dropOnFull &&
                cfg_.dropPolicy == serving::DropPolicy::kDropOldest) {
                touchQueue(0, now_ms);
                stages_[0].queue.pop_front();
                ++dropped_;
                ++stages_[0].report.queueDrops;
                admit(now_ms);
            } else {
                // Reject the newcomer (it still counts as offered).
                ++offered_;
                admittedMs_.push_back(now_ms);
                ++dropped_;
                ++stages_[0].report.queueDrops;
                if (tracer_)
                    tracer_->instantAt("source_drop", "pipeline",
                                       now_ms, 0);
            }
        } else {
            admit(now_ms);
        }
        if (offered_ < cfg_.frames)
            events_.push(now_ms + 1e3 / cfg_.sourceHz,
                         {SimEvent::kSourceArrival, -1, -1});
    }

    void
    onStageDone(std::size_t s, std::int64_t frame, double now_ms)
    {
        auto& st = stages_[s];
        st.busy = false;
        st.inService = -1;

        auto& walker = walkers_[s];
        walker.advance(now_ms / 1e3);
        if (walker.shutdownAt() &&
            *walker.shutdownAt() * 1e3 <= now_ms - 1e-9) {
            // The device died mid-service: the frame is lost and the
            // stage serves nothing further.
            markDown(s, now_ms);
            ++dropped_;
            return;
        }

        st.report.busyMs += st.curServiceMs;
        ++st.report.framesOut;
        if (tracer_) {
            const auto span = tracer_->recordSpanAt(
                "frame " + std::to_string(frame), "stage",
                st.serviceStartMs, st.curServiceMs, st.lane);
            tracer_->argNum(span, "frame", static_cast<double>(frame));
        }

        if (s + 1 == numStages()) {
            completionsMs_.push_back(now_ms);
            latenciesMs_.push_back(
                now_ms - admittedMs_[static_cast<std::size_t>(frame)]);
            ++completed_;
            return;
        }
        const auto tid = net_.submit(static_cast<int>(s),
                                     plan_.transferBytes[s], now_ms);
        transferFrame_[tid] = frame;
    }

    void
    onDelivery(const Delivery& d, double now_ms)
    {
        const auto it = transferFrame_.find(d.id);
        EB_CHECK(it != transferFrame_.end(),
                 "pipeline sim: unknown transfer " << d.id);
        const auto frame = it->second;
        transferFrame_.erase(it);
        const auto li = static_cast<std::size_t>(d.link);

        if (tracer_) {
            const auto span = tracer_->recordSpanAt(
                "frame " + std::to_string(frame), "network",
                d.submittedMs, now_ms - d.submittedMs,
                linkLanes_[li]);
            tracer_->argNum(span, "attempts",
                            static_cast<double>(d.attempts));
            tracer_->argNum(span, "bytes", plan_.transferBytes[li]);
        }
        if (!d.delivered) {
            ++dropped_;
            if (tracer_)
                tracer_->instantAt("frame_lost", "network", now_ms,
                                   linkLanes_[li]);
            tryStartAll(now_ms);
            return;
        }

        const std::size_t s = li + 1;
        auto& st = stages_[s];
        if (st.down) {
            ++dropped_;
        } else if (st.queue.size() >= cfg_.queueCapacity) {
            // Only reachable in dropOnFull mode: backpressure
            // reserves the slot before the upstream stage starts.
            EB_CHECK(cfg_.dropOnFull,
                     "pipeline sim: queue overflow under "
                     "backpressure");
            if (cfg_.dropPolicy == serving::DropPolicy::kDropOldest) {
                touchQueue(s, now_ms);
                st.queue.pop_front();
                ++dropped_;
                ++st.report.queueDrops;
                enqueue(s, frame, now_ms);
            } else {
                ++dropped_;
                ++st.report.queueDrops;
            }
        } else {
            enqueue(s, frame, now_ms);
        }
        tryStartAll(now_ms);
    }

    PipelineSimReport
    finalize()
    {
        PipelineSimReport rep;
        const double window = lastMs_;
        rep.windowMs = window;

        // Frames still queued when the line stalls for good (a dead
        // stage downstream, or an exhausted closed-loop source with a
        // dead stage upstream) are stranded: account them as drops so
        // the offered = completed + dropped invariant holds.
        for (std::size_t s = 0; s < numStages(); ++s) {
            auto& st = stages_[s];
            touchQueue(s, window);
            if (!st.queue.empty()) {
                dropped_ +=
                    static_cast<std::int64_t>(st.queue.size());
                st.report.queueDrops +=
                    static_cast<std::int64_t>(st.queue.size());
                st.queue.clear();
            }
        }

        rep.offered = offered_;
        rep.completed = completed_;
        rep.dropped = dropped_;

        std::sort(latenciesMs_.begin(), latenciesMs_.end());
        rep.p50Ms = harness::Stats::percentile(latenciesMs_, 0.50);
        rep.p95Ms = harness::Stats::percentile(latenciesMs_, 0.95);
        rep.p99Ms = harness::Stats::percentile(latenciesMs_, 0.99);
        rep.maxMs = latenciesMs_.empty() ? 0.0 : latenciesMs_.back();

        const auto n = completionsMs_.size();
        if (n >= 4) {
            const std::size_t i0 = n / 2;
            const double span =
                completionsMs_[n - 1] - completionsMs_[i0];
            if (span > 0.0)
                rep.throughputHz =
                    static_cast<double>(n - 1 - i0) / span * 1e3;
        } else if (n >= 1 && window > 0.0) {
            rep.throughputHz = static_cast<double>(n) / window * 1e3;
        }

        for (std::size_t s = 0; s < numStages(); ++s) {
            auto& st = stages_[s];
            auto& walker = walkers_[s];
            walker.advance(window / 1e3);
            st.report.utilization =
                window > 0.0 ? st.report.busyMs / window : 0.0;
            st.report.meanQueueDepth =
                window > 0.0 ? st.occAccum / window : 0.0;
            st.report.peakQueueDepth =
                static_cast<double>(st.occPeak);
            st.report.energyJ = walker.energyJ();
            st.report.peakSurfaceC = walker.peakC();
            st.report.thermalThrottled = walker.everThrottled();
            if (walker.shutdownAt()) {
                st.report.thermalShutdown = true;
                st.report.shutdownAtS = *walker.shutdownAt();
            }
            rep.stages.push_back(st.report);
        }

        for (int l = 0; l < net_.numLinks(); ++l) {
            const auto& ls =
                net_.stats()[static_cast<std::size_t>(l)];
            LinkReport lr;
            lr.transfers = ls.transfers;
            lr.retransmits = ls.retransmits;
            lr.lostFrames = ls.drops;
            lr.busyMs = ls.busyMs;
            lr.utilization = window > 0.0 ? ls.busyMs / window : 0.0;
            lr.txEnergyMJ = ls.txEnergyMJ;
            rep.links.push_back(lr);
        }

        EB_CHECK(rep.accountingConsistent(),
                 "pipeline sim: offered "
                     << rep.offered << " != completed "
                     << rep.completed << " + dropped "
                     << rep.dropped);
        return rep;
    }

    const PipelineResult& plan_;
    PipelineSimConfig cfg_;
    obs::Tracer* tracer_;
    NetworkModel net_;
    core::Rng rng_;
    serving::TimelineQueue<SimEvent> events_;
    std::vector<StageState> stages_;
    std::vector<serving::ThermalWalker> walkers_;
    std::vector<int> linkLanes_;
    std::vector<double> admittedMs_;
    std::unordered_map<std::int64_t, std::int64_t> transferFrame_;
    std::vector<double> completionsMs_;
    std::vector<double> latenciesMs_;
    std::int64_t offered_ = 0;
    std::int64_t completed_ = 0;
    std::int64_t dropped_ = 0;
    double lastMs_ = 0.0;
};

} // namespace

PipelineSimReport
simulatePipeline(
    const PipelineResult& plan,
    const std::vector<const frameworks::CompiledModel*>& stage_models,
    const NetworkConfig& net, const PipelineSimConfig& config)
{
    PipelineEngine engine(plan, stage_models, net, config);
    return engine.run();
}

PipelineSimReport
simulatePipeline(const PipelineResult& plan,
                 const frameworks::CompiledModel& model,
                 const NetworkConfig& net,
                 const PipelineSimConfig& config)
{
    const std::vector<const frameworks::CompiledModel*> models(
        plan.stageMs.size(), &model);
    return simulatePipeline(plan, models, net, config);
}

} // namespace distrib
} // namespace edgebench
