#include "edgebench/distrib/network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace distrib
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/** Serialization time of @p bytes at @p mbs MB/s, milliseconds. */
double
serializeMs(double bytes, double mbs)
{
    return bytes / (mbs * 1e6) * 1e3;
}

/** Drain rate in bytes/ms of one of @p n transfers sharing @p mbs. */
double
sharedRate(double mbs, int n)
{
    return mbs * 1e3 / static_cast<double>(std::max(n, 1));
}

} // namespace

LinkSpec
linkSpec(const LinkModel& link)
{
    LinkSpec s;
    s.bandwidthMBs = link.uplinkMBs;
    s.latencyMs = link.oneWayLatencyMs;
    s.txPowerW = link.txPowerW;
    return s;
}

NetworkModel::NetworkModel(const NetworkConfig& config, int num_links,
                           std::uint64_t seed)
    : config_(config),
      links_(static_cast<std::size_t>(std::max(num_links, 0))),
      stats_(links_.size()),
      rng_(seed)
{
    EB_CHECK(num_links >= 0, "network: negative link count");
    if (!config_.perLink.empty())
        EB_CHECK(config_.perLink.size() == links_.size(),
                 "network: perLink has " << config_.perLink.size()
                                         << " entries for "
                                         << links_.size() << " links");
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const auto& s = spec(static_cast<int>(l));
        EB_CHECK(s.bandwidthMBs > 0.0,
                 "network: non-positive bandwidth on link " << l);
        EB_CHECK(s.latencyMs >= 0.0 && s.jitter >= 0.0,
                 "network: negative latency/jitter on link " << l);
        EB_CHECK(s.lossRate >= 0.0 && s.lossRate < 1.0,
                 "network: loss rate on link " << l
                                               << " outside [0, 1)");
    }
    EB_CHECK(config_.retransmit.maxAttempts >= 0 &&
                 config_.retransmit.backoffMs >= 0.0 &&
                 config_.retransmit.backoffMult >= 1.0,
             "network: bad retransmit policy");
}

const LinkSpec&
NetworkModel::spec(int link) const
{
    EB_CHECK(link >= 0 &&
                 static_cast<std::size_t>(link) < links_.size(),
             "network: bad link " << link);
    return config_.perLink.empty()
        ? config_.link
        : config_.perLink[static_cast<std::size_t>(link)];
}

double
NetworkModel::effectiveLatencyMs(int link)
{
    const auto& s = spec(link);
    if (s.jitter <= 0.0)
        return s.latencyMs;
    return s.latencyMs * std::max(0.0, 1.0 + rng_.normal(0.0, s.jitter));
}

std::int64_t
NetworkModel::submit(int link, double bytes, double now_ms)
{
    EB_CHECK(bytes >= 0.0, "network: negative transfer size");
    EB_CHECK(now_ms + kEps >= nowMs_,
             "network: submit at " << now_ms
                                   << " ms precedes the model time "
                                   << nowMs_);
    (void)spec(link); // validates the index
    for (auto& d : advanceTo(now_ms))
        buffered_.push_back(d);
    Transfer t;
    t.id = nextId_++;
    t.link = link;
    t.bytes = bytes;
    t.submittedMs = now_ms;
    t.readyMs = now_ms;
    auto& ls = links_[static_cast<std::size_t>(link)];
    ls.pending.push_back(t);
    ++stats_[static_cast<std::size_t>(link)].transfers;
    kick(now_ms);
    return t.id;
}

void
NetworkModel::start(Transfer t, double now_ms)
{
    ++t.attempts;
    const auto& s = spec(t.link);
    auto& ls = links_[static_cast<std::size_t>(t.link)];
    if (config_.medium == MediumMode::kSwitched) {
        // Store-and-forward: the frame holds its cable for the full
        // serialization plus (jittered) latency — back-to-back frames
        // repeat at the analytic period bytes/bw + latency.
        t.doneMs = now_ms + serializeMs(t.bytes, s.bandwidthMBs) +
            effectiveLatencyMs(t.link);
        ls.active = t;
    } else {
        t.remainingBytes = t.bytes;
        ++ls.draining;
        draining_.push_back(t);
    }
}

void
NetworkModel::kick(double now_ms)
{
    for (std::size_t l = 0; l < links_.size(); ++l) {
        auto& ls = links_[l];
        if (config_.medium == MediumMode::kSwitched) {
            while (!ls.active && !ls.pending.empty()) {
                // FIFO among eligible frames (a backed-off re-send
                // may be parked behind a ready newcomer).
                auto it = std::find_if(
                    ls.pending.begin(), ls.pending.end(),
                    [&](const Transfer& t) {
                        return t.readyMs <= now_ms + kEps;
                    });
                if (it == ls.pending.end())
                    break;
                Transfer t = *it;
                ls.pending.erase(it);
                start(std::move(t), now_ms);
            }
        } else {
            for (auto it = ls.pending.begin();
                 it != ls.pending.end();) {
                if (it->readyMs <= now_ms + kEps) {
                    Transfer t = *it;
                    it = ls.pending.erase(it);
                    start(std::move(t), now_ms);
                } else {
                    ++it;
                }
            }
        }
    }
}

void
NetworkModel::resolve(Transfer t, double t_ms,
                      std::vector<Delivery>* out)
{
    const auto& s = spec(t.link);
    const auto li = static_cast<std::size_t>(t.link);
    const bool lost = s.lossRate > 0.0 && rng_.uniform() < s.lossRate;
    if (!lost) {
        out->push_back({t.id, t.link, true, t.attempts, t.submittedMs,
                        t_ms});
        return;
    }
    const int resends_used = t.attempts - 1;
    if (resends_used < config_.retransmit.maxAttempts) {
        ++stats_[li].retransmits;
        t.readyMs = t_ms +
            config_.retransmit.backoffMs *
                std::pow(config_.retransmit.backoffMult,
                         resends_used);
        links_[li].pending.push_back(t);
        return;
    }
    ++stats_[li].drops;
    out->push_back(
        {t.id, t.link, false, t.attempts, t.submittedMs, t_ms});
}

double
NetworkModel::nextEventMs() const
{
    double t = kInf;
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const auto& ls = links_[l];
        if (ls.active)
            t = std::min(t, ls.active->doneMs);
        const bool can_start = config_.medium == MediumMode::kShared ||
            !ls.active;
        if (can_start)
            for (const auto& p : ls.pending)
                t = std::min(t, std::max(p.readyMs, nowMs_));
    }
    const int n = static_cast<int>(draining_.size());
    for (const auto& d : draining_) {
        const double rate = sharedRate(spec(d.link).bandwidthMBs, n);
        t = std::min(t, nowMs_ + d.remainingBytes / rate);
    }
    for (const auto& d : tail_)
        t = std::min(t, d.doneMs);
    return t;
}

std::vector<Delivery>
NetworkModel::advanceTo(double now_ms)
{
    EB_CHECK(now_ms + kEps >= nowMs_,
             "network: advanceTo moves time backwards");
    std::vector<Delivery> out = std::move(buffered_);
    buffered_.clear();
    for (;;) {
        const double next = nextEventMs();
        const double stop = std::min(now_ms, next);
        // Integrate the shared-medium drains over [nowMs_, stop]
        // (membership is constant between events, so the linear step
        // is exact) and account link busy time.
        const double dt = std::max(0.0, stop - nowMs_);
        if (dt > 0.0) {
            const int n = static_cast<int>(draining_.size());
            for (auto& d : draining_)
                d.remainingBytes = std::max(
                    0.0,
                    d.remainingBytes -
                        sharedRate(spec(d.link).bandwidthMBs, n) * dt);
            for (std::size_t l = 0; l < links_.size(); ++l) {
                const bool busy = links_[l].active.has_value() ||
                    links_[l].draining > 0;
                if (busy) {
                    stats_[l].busyMs += dt;
                    stats_[l].txEnergyMJ +=
                        dt * spec(static_cast<int>(l)).txPowerW;
                }
            }
            nowMs_ = stop;
        }
        if (next > now_ms + kEps || !std::isfinite(next))
            break;
        nowMs_ = std::max(nowMs_, next);

        // Fire everything due at the current instant, in a fixed
        // deterministic order: switched completions by link index,
        // then drained frames entering their latency tail, then tail
        // deliveries by (time, id), then eligible pending starts.
        for (std::size_t l = 0; l < links_.size(); ++l) {
            auto& ls = links_[l];
            if (ls.active && ls.active->doneMs <= nowMs_ + kEps) {
                Transfer t = *ls.active;
                ls.active.reset();
                resolve(std::move(t), nowMs_, &out);
            }
        }
        // A drain is complete when its residual would clear within
        // kEps *time* at the current rate — the byte residual itself
        // can sit above any absolute threshold when the predicted
        // finish time rounds to nowMs_ (dt = 0, nothing integrates).
        const int nd = static_cast<int>(draining_.size());
        for (auto it = draining_.begin(); it != draining_.end();) {
            const double rate =
                sharedRate(spec(it->link).bandwidthMBs, nd);
            if (it->remainingBytes <= kEps * std::max(1.0, rate)) {
                Transfer t = *it;
                it = draining_.erase(it);
                --links_[static_cast<std::size_t>(t.link)].draining;
                t.doneMs = nowMs_ + effectiveLatencyMs(t.link);
                tail_.push_back(std::move(t));
            } else {
                ++it;
            }
        }
        std::sort(tail_.begin(), tail_.end(),
                  [](const Transfer& a, const Transfer& b) {
                      return a.doneMs != b.doneMs ? a.doneMs < b.doneMs
                                                  : a.id < b.id;
                  });
        while (!tail_.empty() && tail_.front().doneMs <= nowMs_ + kEps) {
            Transfer t = tail_.front();
            tail_.erase(tail_.begin());
            resolve(std::move(t), nowMs_, &out);
        }
        kick(nowMs_);
    }
    nowMs_ = std::max(nowMs_, now_ms);
    return out;
}

std::int64_t
NetworkModel::inFlight(int link) const
{
    (void)spec(link);
    const auto& ls = links_[static_cast<std::size_t>(link)];
    std::int64_t n = static_cast<std::int64_t>(ls.pending.size()) +
        (ls.active ? 1 : 0);
    for (const auto& d : draining_)
        if (d.link == link)
            ++n;
    for (const auto& d : tail_)
        if (d.link == link)
            ++n;
    return n;
}

} // namespace distrib
} // namespace edgebench
