/**
 * @file
 * Inception-v4 (Szegedy et al.) and Xception (Chollet).
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

namespace
{

NodeId
inceptionA(Graph& g, NodeId in)
{
    NodeId b1 = g.addAvgPool2d(in, 3, 1, 1);
    b1 = convBnAct(g, b1, 96, 1, 1, 0);
    NodeId b2 = convBnAct(g, in, 96, 1, 1, 0);
    NodeId b3 = convBnAct(g, in, 64, 1, 1, 0);
    b3 = convBnAct(g, b3, 96, 3, 1, 1);
    NodeId b4 = convBnAct(g, in, 64, 1, 1, 0);
    b4 = convBnAct(g, b4, 96, 3, 1, 1);
    b4 = convBnAct(g, b4, 96, 3, 1, 1);
    return g.addConcat({b1, b2, b3, b4});
}

NodeId
reductionA(Graph& g, NodeId in)
{
    NodeId b1 = g.addMaxPool2d(in, 3, 2);
    NodeId b2 = convBnAct(g, in, 384, 3, 2, 0);
    NodeId b3 = convBnAct(g, in, 192, 1, 1, 0);
    b3 = convBnAct(g, b3, 224, 3, 1, 1);
    b3 = convBnAct(g, b3, 256, 3, 2, 0);
    return g.addConcat({b1, b2, b3});
}

NodeId
inceptionB(Graph& g, NodeId in)
{
    NodeId b1 = g.addAvgPool2d(in, 3, 1, 1);
    b1 = convBnAct(g, b1, 128, 1, 1, 0);
    NodeId b2 = convBnAct(g, in, 384, 1, 1, 0);
    NodeId b3 = convBnAct(g, in, 192, 1, 1, 0);
    b3 = convBnActRect(g, b3, 224, 1, 7, 1, 1, 0, 3);
    b3 = convBnActRect(g, b3, 256, 7, 1, 1, 1, 3, 0);
    NodeId b4 = convBnAct(g, in, 192, 1, 1, 0);
    b4 = convBnActRect(g, b4, 192, 1, 7, 1, 1, 0, 3);
    b4 = convBnActRect(g, b4, 224, 7, 1, 1, 1, 3, 0);
    b4 = convBnActRect(g, b4, 224, 1, 7, 1, 1, 0, 3);
    b4 = convBnActRect(g, b4, 256, 7, 1, 1, 1, 3, 0);
    return g.addConcat({b1, b2, b3, b4});
}

NodeId
reductionB(Graph& g, NodeId in)
{
    NodeId b1 = g.addMaxPool2d(in, 3, 2);
    NodeId b2 = convBnAct(g, in, 192, 1, 1, 0);
    b2 = convBnAct(g, b2, 192, 3, 2, 0);
    NodeId b3 = convBnAct(g, in, 256, 1, 1, 0);
    b3 = convBnActRect(g, b3, 256, 1, 7, 1, 1, 0, 3);
    b3 = convBnActRect(g, b3, 320, 7, 1, 1, 1, 3, 0);
    b3 = convBnAct(g, b3, 320, 3, 2, 0);
    return g.addConcat({b1, b2, b3});
}

NodeId
inceptionC(Graph& g, NodeId in)
{
    NodeId b1 = g.addAvgPool2d(in, 3, 1, 1);
    b1 = convBnAct(g, b1, 256, 1, 1, 0);
    NodeId b2 = convBnAct(g, in, 256, 1, 1, 0);
    NodeId b3 = convBnAct(g, in, 384, 1, 1, 0);
    NodeId b3a = convBnActRect(g, b3, 256, 1, 3, 1, 1, 0, 1);
    NodeId b3b = convBnActRect(g, b3, 256, 3, 1, 1, 1, 1, 0);
    NodeId b4 = convBnAct(g, in, 384, 1, 1, 0);
    b4 = convBnActRect(g, b4, 448, 1, 3, 1, 1, 0, 1);
    b4 = convBnActRect(g, b4, 512, 3, 1, 1, 1, 1, 0);
    NodeId b4a = convBnActRect(g, b4, 256, 1, 3, 1, 1, 0, 1);
    NodeId b4b = convBnActRect(g, b4, 256, 3, 1, 1, 1, 1, 0);
    return g.addConcat({b1, b2, b3a, b3b, b4a, b4b});
}

} // namespace

graph::Graph
buildInceptionV4(std::int64_t classes)
{
    Graph g("Inception-v4");
    NodeId x = g.addInput({1, 3, 299, 299});

    // Stem.
    x = convBnAct(g, x, 32, 3, 2, 0);  // 149
    x = convBnAct(g, x, 32, 3, 1, 0);  // 147
    x = convBnAct(g, x, 64, 3, 1, 1);  // 147
    {
        NodeId p = g.addMaxPool2d(x, 3, 2);          // 73
        NodeId c = convBnAct(g, x, 96, 3, 2, 0);     // 73
        x = g.addConcat({p, c});                     // 160
    }
    {
        NodeId a = convBnAct(g, x, 64, 1, 1, 0);
        a = convBnAct(g, a, 96, 3, 1, 0);            // 71
        NodeId b = convBnAct(g, x, 64, 1, 1, 0);
        b = convBnActRect(g, b, 64, 7, 1, 1, 1, 3, 0);
        b = convBnActRect(g, b, 64, 1, 7, 1, 1, 0, 3);
        b = convBnAct(g, b, 96, 3, 1, 0);            // 71
        x = g.addConcat({a, b});                     // 192
    }
    {
        NodeId c = convBnAct(g, x, 192, 3, 2, 0);    // 35
        NodeId p = g.addMaxPool2d(x, 3, 2);          // 35
        x = g.addConcat({c, p});                     // 384
    }

    for (int i = 0; i < 4; ++i)
        x = inceptionA(g, x);
    x = reductionA(g, x);
    for (int i = 0; i < 7; ++i)
        x = inceptionB(g, x);
    x = reductionB(g, x);
    for (int i = 0; i < 3; ++i)
        x = inceptionC(g, x);

    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription("224x224");
    return g;
}

namespace
{

/** Xception separable conv: [relu ->] dw3x3+bn -> pw1x1+bn. */
NodeId
sepConv(Graph& g, NodeId in, std::int64_t in_c, std::int64_t out_c,
        bool pre_relu)
{
    NodeId x = in;
    if (pre_relu)
        x = g.addActivation(x, ActKind::kRelu);
    x = convBnAct(g, x, in_c, 3, 1, 1, ActKind::kNone, in_c);
    x = convBnAct(g, x, out_c, 1, 1, 0, ActKind::kNone);
    return x;
}

/** Xception entry/exit residual module with maxpool downsample. */
NodeId
xceptionDownModule(Graph& g, NodeId in, std::int64_t in_c,
                   std::int64_t mid_c, std::int64_t out_c,
                   bool first_relu)
{
    NodeId x = sepConv(g, in, in_c, mid_c, first_relu);
    x = sepConv(g, x, mid_c, out_c, true);
    x = g.addMaxPool2d(x, 3, 2, 1);
    NodeId shortcut = convBnAct(g, in, out_c, 1, 2, 0, ActKind::kNone);
    return g.addAdd(x, shortcut);
}

} // namespace

graph::Graph
buildXception(std::int64_t classes, std::int64_t image)
{
    Graph g("Xception");
    NodeId x = g.addInput({1, 3, image, image});

    // Entry flow.
    x = convBnAct(g, x, 32, 3, 2, 0);   // 111 (at 224)
    x = convBnAct(g, x, 64, 3, 1, 0);   // 109
    x = xceptionDownModule(g, x, 64, 128, 128, /*first_relu=*/false);
    x = xceptionDownModule(g, x, 128, 256, 256, true);
    x = xceptionDownModule(g, x, 256, 728, 728, true);

    // Middle flow: 8 identity-residual modules.
    for (int i = 0; i < 8; ++i) {
        NodeId y = sepConv(g, x, 728, 728, true);
        y = sepConv(g, y, 728, 728, true);
        y = sepConv(g, y, 728, 728, true);
        x = g.addAdd(x, y);
    }

    // Exit flow.
    {
        NodeId y = sepConv(g, x, 728, 728, true);
        y = sepConv(g, y, 728, 1024, true);
        y = g.addMaxPool2d(y, 3, 2, 1);
        NodeId shortcut = convBnAct(g, x, 1024, 1, 2, 0,
                                    ActKind::kNone);
        x = g.addAdd(y, shortcut);
    }
    x = sepConv(g, x, 1024, 1536, false);
    x = g.addActivation(x, ActKind::kRelu);
    x = sepConv(g, x, 1536, 2048, false);
    x = g.addActivation(x, ActKind::kRelu);

    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace edgebench
