/**
 * @file
 * MobileNet-v1 (Howard et al.) and MobileNet-v2 (Sandler et al.).
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

graph::Graph
buildMobileNetV1(std::int64_t classes, std::int64_t image)
{
    Graph g("MobileNet-v1");
    NodeId x = g.addInput({1, 3, image, image});
    x = convBnAct(g, x, 32, 3, 2, 1, ActKind::kRelu6, 1, "conv1");

    struct Ds { std::int64_t in_c, out_c, stride; };
    const Ds blocks[] = {
        {32, 64, 1},    {64, 128, 2},   {128, 128, 1},
        {128, 256, 2},  {256, 256, 1},  {256, 512, 2},
        {512, 512, 1},  {512, 512, 1},  {512, 512, 1},
        {512, 512, 1},  {512, 512, 1},  {512, 1024, 2},
        {1024, 1024, 1},
    };
    for (const auto& b : blocks)
        x = depthwiseSeparable(g, x, b.in_c, b.out_c, b.stride);

    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

namespace
{

/** MobileNet-v2 inverted residual with linear bottleneck. */
NodeId
invertedResidual(Graph& g, NodeId in, std::int64_t in_c,
                 std::int64_t out_c, std::int64_t stride,
                 std::int64_t expand)
{
    NodeId x = in;
    const std::int64_t mid_c = in_c * expand;
    if (expand != 1)
        x = convBnAct(g, x, mid_c, 1, 1, 0, ActKind::kRelu6);
    x = convBnAct(g, x, mid_c, 3, stride, 1, ActKind::kRelu6, mid_c);
    x = convBnAct(g, x, out_c, 1, 1, 0, ActKind::kNone); // linear
    if (stride == 1 && in_c == out_c)
        x = g.addAdd(x, in);
    return x;
}

} // namespace

graph::Graph
buildMobileNetV2(std::int64_t classes, std::int64_t image)
{
    Graph g("MobileNet-v2");
    NodeId x = g.addInput({1, 3, image, image});
    x = convBnAct(g, x, 32, 3, 2, 1, ActKind::kRelu6, 1, "conv1");

    // (expansion t, channels c, repeats n, first stride s).
    struct Cfg { std::int64_t t, c, n, s; };
    const Cfg cfgs[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
        {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
        {6, 320, 1, 1},
    };
    std::int64_t in_c = 32;
    for (const auto& cfg : cfgs) {
        for (std::int64_t i = 0; i < cfg.n; ++i) {
            const std::int64_t stride = (i == 0) ? cfg.s : 1;
            x = invertedResidual(g, x, in_c, cfg.c, stride, cfg.t);
            in_c = cfg.c;
        }
    }
    x = convBnAct(g, x, 1280, 1, 1, 0, ActKind::kRelu6, 1,
                  "conv_last");
    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace edgebench
