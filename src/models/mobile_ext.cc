/**
 * @file
 * Mobile-specific extension models cited by the paper's related work
 * (Section VIII, group 2): SqueezeNet (reference [84]) and
 * ShuffleNet (reference [85]).
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

namespace
{

/** SqueezeNet fire module: squeeze 1x1 -> expand {1x1, 3x3}. */
NodeId
fire(Graph& g, NodeId in, std::int64_t squeeze, std::int64_t expand)
{
    NodeId s = convAct(g, in, squeeze, 1, 1, 0);
    NodeId e1 = convAct(g, s, expand, 1, 1, 0);
    NodeId e3 = convAct(g, s, expand, 3, 1, 1);
    return g.addConcat({e1, e3});
}

} // namespace

graph::Graph
buildSqueezeNet(std::int64_t classes, std::int64_t image)
{
    // SqueezeNet v1.1 (the 2.4x-cheaper revision).
    Graph g("SqueezeNet");
    NodeId x = g.addInput({1, 3, image, image});
    x = convAct(g, x, 64, 3, 2, 0, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 3, 2, 0, /*ceil=*/true);
    x = fire(g, x, 16, 64);
    x = fire(g, x, 16, 64);
    x = g.addMaxPool2d(x, 3, 2, 0, true);
    x = fire(g, x, 32, 128);
    x = fire(g, x, 32, 128);
    x = g.addMaxPool2d(x, 3, 2, 0, true);
    x = fire(g, x, 48, 192);
    x = fire(g, x, 48, 192);
    x = fire(g, x, 64, 256);
    x = fire(g, x, 64, 256);
    x = convAct(g, x, classes, 1, 1, 0, ActKind::kRelu, 1, "conv10");
    x = g.addGlobalAvgPool(x);
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

namespace
{

/** ShuffleNet v1 unit. @p stride 1 = residual add; 2 = concat. */
NodeId
shuffleUnit(Graph& g, NodeId in, std::int64_t in_c,
            std::int64_t out_c, std::int64_t groups,
            std::int64_t stride, bool first_unit)
{
    // The very first unit uses a dense 1x1 (input has 24 channels,
    // not divisible into meaningful groups).
    const std::int64_t g1 = first_unit ? 1 : groups;
    const std::int64_t branch_c =
        stride == 2 ? out_c - in_c : out_c;
    const std::int64_t mid_c = branch_c / 4;

    NodeId x = convBnAct(g, in, mid_c, 1, 1, 0, ActKind::kRelu, g1);
    x = g.addChannelShuffle(x, groups);
    x = convBnAct(g, x, mid_c, 3, stride, 1, ActKind::kNone, mid_c);
    x = convBnAct(g, x, branch_c, 1, 1, 0, ActKind::kNone, groups);

    NodeId out;
    if (stride == 2) {
        NodeId shortcut = g.addAvgPool2d(in, 3, 2, 1);
        out = g.addConcat({shortcut, x});
    } else {
        out = g.addAdd(x, in);
    }
    return g.addActivation(out, ActKind::kRelu);
}

} // namespace

graph::Graph
buildShuffleNet(std::int64_t classes, std::int64_t image,
                std::int64_t groups)
{
    // Stage output channels for the 1x width net per group count
    // (Zhang et al., Table 1).
    std::int64_t stage_c;
    switch (groups) {
      case 1: stage_c = 144; break;
      case 2: stage_c = 200; break;
      case 3: stage_c = 240; break;
      case 4: stage_c = 272; break;
      case 8: stage_c = 384; break;
      default:
        throw InvalidArgumentError(
            "buildShuffleNet: groups must be 1, 2, 3, 4 or 8");
    }

    Graph g("ShuffleNet");
    NodeId x = g.addInput({1, 3, image, image});
    x = convBnAct(g, x, 24, 3, 2, 1, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 3, 2, 1);

    std::int64_t in_c = 24;
    const std::int64_t repeats[3] = {3, 7, 3};
    for (int stage = 0; stage < 3; ++stage) {
        const std::int64_t out_c = stage_c << stage;
        x = shuffleUnit(g, x, in_c, out_c, groups, 2,
                        /*first_unit=*/stage == 0);
        in_c = out_c;
        for (std::int64_t r = 0; r < repeats[stage]; ++r)
            x = shuffleUnit(g, x, in_c, in_c, groups, 1, false);
    }
    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

namespace
{

/** DenseNet layer: bn-relu-1x1(4k) bottleneck, bn-relu-3x3(k). */
NodeId
denseLayer(Graph& g, NodeId in, std::int64_t growth)
{
    NodeId x = g.addBatchNorm(in);
    x = g.addActivation(x, ActKind::kRelu);
    x = g.addConv2d(x, 4 * growth, 1, 1, 1, 0, 1, 1, false);
    x = g.addBatchNorm(x);
    x = g.addActivation(x, ActKind::kRelu);
    x = g.addConv2d(x, growth, 3, 3, 1, 1, 1, 1, false);
    return g.addConcat({in, x});
}

/** DenseNet transition: bn-relu-1x1(half) + 2x2 average pool. */
NodeId
denseTransition(Graph& g, NodeId in, std::int64_t in_c)
{
    NodeId x = g.addBatchNorm(in);
    x = g.addActivation(x, ActKind::kRelu);
    x = g.addConv2d(x, in_c / 2, 1, 1, 1, 0, 1, 1, false);
    return g.addAvgPool2d(x, 2, 2);
}

} // namespace

graph::Graph
buildDenseNet121(std::int64_t classes, std::int64_t image)
{
    constexpr std::int64_t kGrowth = 32;
    const std::int64_t blocks[4] = {6, 12, 24, 16};

    Graph g("DenseNet-121");
    NodeId x = g.addInput({1, 3, image, image});
    x = convBnAct(g, x, 64, 7, 2, 3, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 3, 2, 1);

    std::int64_t channels = 64;
    for (int stage = 0; stage < 4; ++stage) {
        for (std::int64_t l = 0; l < blocks[stage]; ++l) {
            x = denseLayer(g, x, kGrowth);
            channels += kGrowth;
        }
        if (stage < 3) {
            x = denseTransition(g, x, channels);
            channels /= 2;
        }
    }
    x = g.addBatchNorm(x);
    x = g.addActivation(x, ActKind::kRelu);
    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace edgebench
