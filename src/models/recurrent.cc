/**
 * @file
 * Recurrent extension models — the paper's stated future work
 * ("extend our models to include more varieties of DNN models, such
 * as RNNs and LSTMs").
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

graph::Graph
buildCharRnn(std::int64_t vocab, std::int64_t seq_len,
             std::int64_t hidden)
{
    Graph g("CharRNN");
    // One-hot character input.
    NodeId x = g.addInput({1, seq_len, vocab});
    x = g.addLstm(x, hidden, "lstm1");
    x = g.addLstm(x, hidden, "lstm2");
    x = g.addSelectTimestep(x, -1);
    x = g.addDense(x, vocab, true, "decoder");
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription(std::to_string(seq_len) + "x" +
                          std::to_string(vocab));
    return g;
}

graph::Graph
buildGruClassifier(std::int64_t features, std::int64_t seq_len,
                   std::int64_t hidden, std::int64_t classes)
{
    Graph g("GRU-Classifier");
    NodeId x = g.addInput({1, seq_len, features});
    x = g.addGru(x, hidden, "gru1");
    x = g.addGru(x, hidden, "gru2");
    x = g.addSelectTimestep(x, -1);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription(std::to_string(seq_len) + "x" +
                          std::to_string(features));
    return g;
}

graph::Graph
buildDeepSpeech2Lite(std::int64_t time_steps, std::int64_t freq_bins,
                     std::int64_t hidden, std::int64_t alphabet)
{
    EB_CHECK(time_steps % 2 == 0 && freq_bins > 10,
             "buildDeepSpeech2Lite: bad spectrogram dims");
    Graph g("DeepSpeech2-lite");
    // Spectrogram as a 1-channel image: [1, 1, T, F].
    NodeId x = g.addInput({1, 1, time_steps, freq_bins});
    // Conv front-end: 2x (time, freq) downsampling, 32 channels.
    x = g.addConv2dRect(x, 32, 11, 41, 2, 2, 5, 20, false, "conv1");
    x = g.addBatchNorm(x);
    x = g.addActivation(x, ActKind::kRelu);
    x = g.addConv2dRect(x, 32, 11, 21, 1, 2, 5, 10, false, "conv2");
    x = g.addBatchNorm(x);
    x = g.addActivation(x, ActKind::kRelu);
    // Collapse (channels, freq) into the feature dim: [1, T', C*F'].
    const auto& s = g.node(x).outShape; // [1, 32, T', F']
    const std::int64_t t_out = s[2];
    const std::int64_t feat = s[1] * s[3];
    // NCHW -> [N, T, F] is a transpose in a real engine; the reshape
    // preserves element count and, with random weights, statistics.
    x = g.addReshape(x, {1, t_out, feat});
    for (int i = 0; i < 3; ++i)
        x = g.addLstm(x, hidden,
                      "lstm" + std::to_string(i + 1));
    x = g.addSelectTimestep(x, -1);
    x = g.addDense(x, alphabet, true, "char_head");
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription(std::to_string(time_steps) + "x" +
                          std::to_string(freq_bins));
    return g;
}

std::vector<graph::Graph>
buildRecurrentExtensions()
{
    std::vector<graph::Graph> v;
    v.push_back(buildCharRnn());
    v.push_back(buildGruClassifier());
    v.push_back(buildDeepSpeech2Lite());
    return v;
}

} // namespace models
} // namespace edgebench
