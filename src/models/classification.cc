/**
 * @file
 * Classic classification models: ResNet, VGG, VGG-S, AlexNet,
 * CifarNet.
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

namespace
{

/** ResNet basic block (two 3x3 convs), used by ResNet-18. */
NodeId
basicBlock(Graph& g, NodeId in, std::int64_t in_c, std::int64_t out_c,
           std::int64_t stride)
{
    NodeId x = convBnAct(g, in, out_c, 3, stride, 1);
    x = convBnAct(g, x, out_c, 3, 1, 1, ActKind::kNone);
    NodeId shortcut = in;
    if (stride != 1 || in_c != out_c)
        shortcut = convBnAct(g, in, out_c, 1, stride, 0,
                             ActKind::kNone);
    NodeId sum = g.addAdd(x, shortcut);
    return g.addActivation(sum, ActKind::kRelu);
}

/** ResNet bottleneck block (1x1 -> 3x3 -> 1x1 x4), ResNet-50/101. */
NodeId
bottleneckBlock(Graph& g, NodeId in, std::int64_t in_c,
                std::int64_t mid_c, std::int64_t stride)
{
    const std::int64_t out_c = mid_c * 4;
    NodeId x = convBnAct(g, in, mid_c, 1, 1, 0);
    x = convBnAct(g, x, mid_c, 3, stride, 1);
    x = convBnAct(g, x, out_c, 1, 1, 0, ActKind::kNone);
    NodeId shortcut = in;
    if (stride != 1 || in_c != out_c)
        shortcut = convBnAct(g, in, out_c, 1, stride, 0,
                             ActKind::kNone);
    NodeId sum = g.addAdd(x, shortcut);
    return g.addActivation(sum, ActKind::kRelu);
}

} // namespace

graph::Graph
buildResNet(int depth, std::int64_t classes, std::int64_t image)
{
    int blocks[4];
    bool bottleneck = true;
    switch (depth) {
      case 18:
        blocks[0] = 2; blocks[1] = 2; blocks[2] = 2; blocks[3] = 2;
        bottleneck = false;
        break;
      case 50:
        blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3;
        break;
      case 101:
        blocks[0] = 3; blocks[1] = 4; blocks[2] = 23; blocks[3] = 3;
        break;
      default:
        throw InvalidArgumentError(
            "buildResNet: unsupported depth " +
            std::to_string(depth));
    }

    Graph g("ResNet-" + std::to_string(depth));
    NodeId x = g.addInput({1, 3, image, image});
    x = convBnAct(g, x, 64, 7, 2, 3, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 3, 2, 1, false, "pool1");

    std::int64_t in_c = 64;
    const std::int64_t widths[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        const std::int64_t w = widths[stage];
        for (int b = 0; b < blocks[stage]; ++b) {
            const std::int64_t stride =
                (b == 0 && stage > 0) ? 2 : 1;
            if (bottleneck) {
                x = bottleneckBlock(g, x, in_c, w, stride);
                in_c = w * 4;
            } else {
                x = basicBlock(g, x, in_c, w, stride);
                in_c = w;
            }
        }
    }
    x = g.addGlobalAvgPool(x);
    x = g.addDense(x, classes, true, "fc");
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

graph::Graph
buildVgg(int depth, std::int64_t classes, std::int64_t image)
{
    // Configuration D (VGG-16) / E (VGG-19): conv counts per stage.
    int per_stage[5];
    switch (depth) {
      case 16:
        per_stage[0] = 2; per_stage[1] = 2; per_stage[2] = 3;
        per_stage[3] = 3; per_stage[4] = 3;
        break;
      case 19:
        per_stage[0] = 2; per_stage[1] = 2; per_stage[2] = 4;
        per_stage[3] = 4; per_stage[4] = 4;
        break;
      default:
        throw InvalidArgumentError("buildVgg: unsupported depth " +
                                   std::to_string(depth));
    }

    Graph g("VGG" + std::to_string(depth));
    NodeId x = g.addInput({1, 3, image, image});
    const std::int64_t widths[5] = {64, 128, 256, 512, 512};
    for (int stage = 0; stage < 5; ++stage) {
        for (int c = 0; c < per_stage[stage]; ++c)
            x = convAct(g, x, widths[stage], 3, 1, 1);
        x = g.addMaxPool2d(x, 2, 2);
    }
    x = g.addFlatten(x);
    x = denseAct(g, x, 4096);
    x = denseAct(g, x, 4096);
    x = g.addDense(x, classes);
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

graph::Graph
buildVggS(std::int64_t image, std::int64_t classes)
{
    EB_CHECK(image == 224 || image == 32,
             "buildVggS: image must be 224 or 32, got " << image);
    Graph g("VGG-S " + std::to_string(image) + "x" +
            std::to_string(image));
    NodeId x = g.addInput({1, 3, image, image});
    if (image == 224) {
        // CNN-S (Chatfield et al.): 224 -> conv7/2 -> 109 ->
        // pool3/3 -> 36 -> conv5 -> pool2/2 -> 18 -> conv3 x3 ->
        // pool3/3 -> 6.
        x = convAct(g, x, 96, 7, 2, 0, ActKind::kRelu, 1, "conv1");
        x = g.addMaxPool2d(x, 3, 3);
        x = convAct(g, x, 256, 5, 1, 2, ActKind::kRelu, 1, "conv2");
        x = g.addMaxPool2d(x, 2, 2);
        x = convAct(g, x, 512, 3, 1, 1);
        x = convAct(g, x, 512, 3, 1, 1);
        x = convAct(g, x, 512, 3, 1, 1);
        x = g.addMaxPool2d(x, 3, 3);
    } else {
        // Scaled-down CNN-S for CIFAR-sized inputs: 32 -> conv7/2
        // (pad 3) -> 16 -> pool3/2 -> 7 -> conv5 -> pool2/2 -> 3 ->
        // conv3 x3 -> pool3/3 -> 1.
        x = convAct(g, x, 96, 7, 2, 3, ActKind::kRelu, 1, "conv1");
        x = g.addMaxPool2d(x, 3, 2);
        x = convAct(g, x, 256, 5, 1, 2, ActKind::kRelu, 1, "conv2");
        x = g.addMaxPool2d(x, 2, 2);
        x = convAct(g, x, 512, 3, 1, 1);
        x = convAct(g, x, 512, 3, 1, 1);
        x = convAct(g, x, 512, 3, 1, 1);
        x = g.addMaxPool2d(x, 3, 3);
    }
    x = g.addFlatten(x);
    x = denseAct(g, x, 4096);
    x = denseAct(g, x, 4096);
    x = g.addDense(x, classes);
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

namespace
{

graph::Graph
buildAlexNetImpl(std::int64_t classes, std::int64_t fc6, bool grouped,
                 const std::string& name)
{
    Graph g(name);
    // Caffe-style AlexNet takes 227x227 crops.
    NodeId x = g.addInput({1, 3, 227, 227});
    x = convAct(g, x, 96, 11, 4, 0, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 3, 2);
    x = convAct(g, x, 256, 5, 1, 2, ActKind::kRelu, grouped ? 2 : 1,
                "conv2");
    x = g.addMaxPool2d(x, 3, 2);
    x = convAct(g, x, 384, 3, 1, 1, ActKind::kRelu, 1, "conv3");
    x = convAct(g, x, 384, 3, 1, 1, ActKind::kRelu, grouped ? 2 : 1,
                "conv4");
    x = convAct(g, x, 256, 3, 1, 1, ActKind::kRelu, grouped ? 2 : 1,
                "conv5");
    x = g.addMaxPool2d(x, 3, 2);
    x = g.addFlatten(x);
    x = denseAct(g, x, fc6);
    x = denseAct(g, x, 4096);
    x = g.addDense(x, classes);
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription("224x224");
    return g;
}

} // namespace

graph::Graph
buildAlexNet(std::int64_t classes)
{
    // fc6 = 7168 reproduces Table I's 102.14 M-parameter AlexNet
    // variant (see DESIGN.md, "Known deviations").
    return buildAlexNetImpl(classes, 7168, /*grouped=*/true, "AlexNet");
}

graph::Graph
buildAlexNetCanonical(std::int64_t classes)
{
    return buildAlexNetImpl(classes, 4096, /*grouped=*/true,
                            "AlexNet-canonical");
}

graph::Graph
buildCifarNet(std::int64_t classes)
{
    Graph g("CifarNet");
    NodeId x = g.addInput({1, 3, 32, 32});
    x = convAct(g, x, 32, 5, 1, 2, ActKind::kRelu, 1, "conv1");
    x = g.addMaxPool2d(x, 2, 2);
    x = convAct(g, x, 32, 5, 1, 2, ActKind::kRelu, 1, "conv2");
    x = g.addMaxPool2d(x, 2, 2);
    x = convAct(g, x, 64, 3, 1, 1, ActKind::kRelu, 1, "conv3");
    x = g.addMaxPool2d(x, 2, 2);
    x = g.addFlatten(x);
    x = denseAct(g, x, 576);
    x = denseAct(g, x, 256);
    x = g.addDense(x, classes);
    x = g.addSoftmax(x);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace edgebench
