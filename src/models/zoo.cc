/**
 * @file
 * Model registry: Table I metadata and the buildModel dispatcher.
 */

#include "edgebench/models/zoo.hh"

#include <array>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

namespace
{

/**
 * Table I of the paper, plus the relative tolerance our builders meet
 * against it. Tolerances wider than a few percent are documented
 * deviations (DESIGN.md "Known deviations"): the paper's AlexNet,
 * TinyYolo, YOLOv3 and C3D entries use nonstandard variants or the
 * 2-FLOP-per-MAC convention.
 */
const std::array<ModelInfo, 16> kModelTable = {{
    {ModelId::kResNet18, "ResNet-18", "224x224", 1.83, 11.69, 156.54,
     0.02, 0.01},
    {ModelId::kResNet50, "ResNet-50", "224x224", 4.14, 25.56, 161.97,
     0.02, 0.01},
    {ModelId::kResNet101, "ResNet-101", "224x224", 7.87, 44.55, 176.66,
     0.02, 0.01},
    {ModelId::kXception, "Xception", "224x224", 4.65, 22.91, 202.97,
     0.03, 0.01},
    {ModelId::kMobileNetV2, "MobileNet-v2", "224x224", 0.32, 3.53,
     90.65, 0.05, 0.01},
    {ModelId::kInceptionV4, "Inception-v4", "224x224", 12.27, 42.71,
     287.29, 0.01, 0.01},
    {ModelId::kAlexNet, "AlexNet", "224x224", 0.72, 102.14, 7.05,
     0.08, 0.01},
    {ModelId::kVgg16, "VGG16", "224x224", 15.47, 138.36, 111.81,
     0.005, 0.005},
    {ModelId::kVgg19, "VGG19", "224x224", 19.63, 143.66, 136.64,
     0.005, 0.005},
    {ModelId::kVggS32, "VGG-S", "32x32", 0.11, 32.11, 3.42, 0.02,
     0.10},
    {ModelId::kVggS224, "VGG-S", "224x224", 3.27, 102.91, 31.77, 0.10,
     0.005},
    {ModelId::kCifarNet, "CifarNet", "32x32", 0.01, 0.79, 12.65, 0.12,
     0.01},
    {ModelId::kSsdMobileNetV1, "SSD MobileNet-v1", "300x300", 0.98,
     4.23, 236.07, 0.30, 0.30},
    {ModelId::kYoloV3, "YOLOv3", "224x224", 38.97, 62.00, 628.54,
     0.03, 0.005},
    {ModelId::kTinyYolo, "TinyYolo", "224x224", 5.56, 15.87, 350.35,
     0.40, 0.03},
    {ModelId::kC3d, "C3D", "12x112x112", 57.99, 89.00, 734.05, 0.55,
     0.10},
}};

} // namespace

const std::vector<ModelId>&
allModels()
{
    static const std::vector<ModelId> ids = [] {
        std::vector<ModelId> v;
        for (const auto& m : kModelTable)
            v.push_back(m.id);
        return v;
    }();
    return ids;
}

const ModelInfo&
modelInfo(ModelId id)
{
    for (const auto& m : kModelTable)
        if (m.id == id)
            return m;
    throw InternalError("modelInfo: unknown model id");
}

ModelId
modelByName(const std::string& name)
{
    for (const auto& m : kModelTable)
        if (m.name == name)
            return m.id;
    throw InvalidArgumentError("modelByName: unknown model '" + name +
                               "'");
}

graph::Graph
buildModel(ModelId id)
{
    switch (id) {
      case ModelId::kResNet18: return buildResNet(18);
      case ModelId::kResNet50: return buildResNet(50);
      case ModelId::kResNet101: return buildResNet(101);
      case ModelId::kXception: return buildXception();
      case ModelId::kMobileNetV2: return buildMobileNetV2();
      case ModelId::kInceptionV4: return buildInceptionV4();
      case ModelId::kAlexNet: return buildAlexNet();
      case ModelId::kVgg16: return buildVgg(16);
      case ModelId::kVgg19: return buildVgg(19);
      case ModelId::kVggS32: return buildVggS(32);
      case ModelId::kVggS224: return buildVggS(224);
      case ModelId::kCifarNet: return buildCifarNet();
      case ModelId::kSsdMobileNetV1: return buildSsdMobileNetV1();
      case ModelId::kYoloV3: return buildYoloV3();
      case ModelId::kTinyYolo: return buildTinyYolo();
      case ModelId::kC3d: return buildC3d();
    }
    throw InternalError("buildModel: unknown model id");
}

} // namespace models
} // namespace edgebench
