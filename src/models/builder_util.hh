/**
 * @file
 * Internal helpers shared by the model builders. Not installed as a
 * public header.
 */

#ifndef EDGEBENCH_MODELS_BUILDER_UTIL_HH
#define EDGEBENCH_MODELS_BUILDER_UTIL_HH

#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace models
{
namespace detail
{

using graph::ActKind;
using graph::Graph;
using graph::NodeId;

/** conv (no bias) + batch norm + activation; the ubiquitous block. */
inline NodeId
convBnAct(Graph& g, NodeId in, std::int64_t out_c, std::int64_t k,
          std::int64_t stride, std::int64_t pad,
          ActKind act = ActKind::kRelu, std::int64_t groups = 1,
          const std::string& name = "")
{
    NodeId x = g.addConv2d(in, out_c, k, k, stride, pad, 1, groups,
                           /*bias=*/false, name);
    x = g.addBatchNorm(x, 1e-5, name.empty() ? "" : name + "_bn");
    if (act != ActKind::kNone)
        x = g.addActivation(x, act,
                            name.empty() ? "" : name + "_act");
    return x;
}

/** Rectangular conv + bn + relu (Inception factorized convs). */
inline NodeId
convBnActRect(Graph& g, NodeId in, std::int64_t out_c, std::int64_t k_h,
              std::int64_t k_w, std::int64_t stride_h,
              std::int64_t stride_w, std::int64_t pad_h,
              std::int64_t pad_w, const std::string& name = "")
{
    NodeId x = g.addConv2dRect(in, out_c, k_h, k_w, stride_h, stride_w,
                               pad_h, pad_w, /*bias=*/false, name);
    x = g.addBatchNorm(x);
    return g.addActivation(x, ActKind::kRelu);
}

/** conv with bias + activation, no batch norm (VGG/AlexNet style). */
inline NodeId
convAct(Graph& g, NodeId in, std::int64_t out_c, std::int64_t k,
        std::int64_t stride, std::int64_t pad,
        ActKind act = ActKind::kRelu, std::int64_t groups = 1,
        const std::string& name = "")
{
    NodeId x = g.addConv2d(in, out_c, k, k, stride, pad, 1, groups,
                           /*bias=*/true, name);
    if (act != ActKind::kNone)
        x = g.addActivation(x, act);
    return x;
}

/** Depthwise separable block (MobileNet-v1): dw3x3 + pw1x1. */
inline NodeId
depthwiseSeparable(Graph& g, NodeId in, std::int64_t in_c,
                   std::int64_t out_c, std::int64_t stride,
                   ActKind act = ActKind::kRelu6)
{
    NodeId x = convBnAct(g, in, in_c, 3, stride, 1, act, in_c);
    return convBnAct(g, x, out_c, 1, 1, 0, act);
}

/** fc + relu. */
inline NodeId
denseAct(Graph& g, NodeId in, std::int64_t out_f,
         ActKind act = ActKind::kRelu)
{
    NodeId x = g.addDense(in, out_f, /*bias=*/true);
    if (act != ActKind::kNone)
        x = g.addActivation(x, act);
    return x;
}

} // namespace detail
} // namespace models
} // namespace edgebench

#endif // EDGEBENCH_MODELS_BUILDER_UTIL_HH
