/**
 * @file
 * Detection models: SSD with MobileNet-v1 features (SSDLite-style
 * heads), YOLOv3 (Darknet-53), and Tiny YOLO (v2 head).
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

namespace
{

/** DarkNet conv unit: conv + bn + leaky(0.1). */
NodeId
darkConv(Graph& g, NodeId in, std::int64_t out_c, std::int64_t k,
         std::int64_t stride, const std::string& name = "")
{
    const std::int64_t pad = k / 2;
    NodeId x = g.addConv2d(in, out_c, k, k, stride, pad, 1, 1,
                           /*bias=*/false, name);
    x = g.addBatchNorm(x);
    return g.addActivation(x, ActKind::kLeakyRelu);
}

/** DarkNet-53 residual unit: 1x1 c/2 -> 3x3 c, identity add. */
NodeId
darkResidual(Graph& g, NodeId in, std::int64_t c)
{
    NodeId x = darkConv(g, in, c / 2, 1, 1);
    x = darkConv(g, x, c, 3, 1);
    return g.addAdd(x, in);
}

/** DarkNet "same" 2x2/1 maxpool (pads right/bottom by one). */
NodeId
samePool2x2Stride1(Graph& g, NodeId in)
{
    NodeId x = g.addPadSpatial(in, 0, 1, 0, 1);
    return g.addMaxPool2d(x, 2, 1);
}

} // namespace

graph::Graph
buildTinyYolo(std::int64_t classes, std::int64_t image)
{
    EB_CHECK(image % 32 == 0,
             "buildTinyYolo: image must be a multiple of 32");
    constexpr std::int64_t kAnchors = 5;
    Graph g("TinyYolo");
    NodeId x = g.addInput({1, 3, image, image});
    const std::int64_t widths[] = {16, 32, 64, 128, 256};
    for (std::int64_t w : widths) {
        x = darkConv(g, x, w, 3, 1);
        x = g.addMaxPool2d(x, 2, 2);
    }
    x = darkConv(g, x, 512, 3, 1);
    x = samePool2x2Stride1(g, x);
    x = darkConv(g, x, 1024, 3, 1);
    x = darkConv(g, x, 1024, 3, 1);
    x = g.addConv2d(x, kAnchors * (5 + classes), 1, 1, 1, 0, 1, 1,
                    /*bias=*/true, "detect_conv");
    x = g.addYoloDetect(x, classes, kAnchors);
    g.markOutput(x);
    g.setInputDescription("224x224");
    return g;
}

graph::Graph
buildYoloV3(std::int64_t classes, std::int64_t image)
{
    EB_CHECK(image % 32 == 0,
             "buildYoloV3: image must be a multiple of 32");
    constexpr std::int64_t kAnchors = 3;
    const std::int64_t det_c = kAnchors * (5 + classes);
    Graph g("YOLOv3");
    NodeId x = g.addInput({1, 3, image, image});

    // Darknet-53 backbone.
    x = darkConv(g, x, 32, 3, 1);
    x = darkConv(g, x, 64, 3, 2);
    x = darkResidual(g, x, 64);
    x = darkConv(g, x, 128, 3, 2);
    for (int i = 0; i < 2; ++i)
        x = darkResidual(g, x, 128);
    x = darkConv(g, x, 256, 3, 2);
    for (int i = 0; i < 8; ++i)
        x = darkResidual(g, x, 256);
    const NodeId route36 = x; // 52x52 scale (at 416)
    x = darkConv(g, x, 512, 3, 2);
    for (int i = 0; i < 8; ++i)
        x = darkResidual(g, x, 512);
    const NodeId route61 = x; // 26x26 scale
    x = darkConv(g, x, 1024, 3, 2);
    for (int i = 0; i < 4; ++i)
        x = darkResidual(g, x, 1024);

    // Detection head, scale 1 (13x13 at 416).
    auto conv_set = [&](NodeId in, std::int64_t c) {
        NodeId y = darkConv(g, in, c, 1, 1);
        y = darkConv(g, y, c * 2, 3, 1);
        y = darkConv(g, y, c, 1, 1);
        y = darkConv(g, y, c * 2, 3, 1);
        return darkConv(g, y, c, 1, 1);
    };
    x = conv_set(x, 512);
    {
        NodeId y = darkConv(g, x, 1024, 3, 1);
        y = g.addConv2d(y, det_c, 1, 1, 1, 0, 1, 1, true, "detect1");
        y = g.addYoloDetect(y, classes, kAnchors);
        g.markOutput(y);
    }

    // Scale 2 (26x26).
    x = darkConv(g, x, 256, 1, 1);
    x = g.addUpsample(x, 2);
    x = g.addConcat({x, route61});
    x = conv_set(x, 256);
    {
        NodeId y = darkConv(g, x, 512, 3, 1);
        y = g.addConv2d(y, det_c, 1, 1, 1, 0, 1, 1, true, "detect2");
        y = g.addYoloDetect(y, classes, kAnchors);
        g.markOutput(y);
    }

    // Scale 3 (52x52).
    x = darkConv(g, x, 128, 1, 1);
    x = g.addUpsample(x, 2);
    x = g.addConcat({x, route36});
    x = conv_set(x, 128);
    {
        NodeId y = darkConv(g, x, 256, 3, 1);
        y = g.addConv2d(y, det_c, 1, 1, 1, 0, 1, 1, true, "detect3");
        y = g.addYoloDetect(y, classes, kAnchors);
        g.markOutput(y);
    }
    g.setInputDescription("224x224");
    return g;
}

namespace
{

/** SSDLite prediction head: dw3x3 + pw1x1 projecting to out_c. */
NodeId
liteHead(Graph& g, NodeId in, std::int64_t in_c, std::int64_t out_c)
{
    NodeId x = convBnAct(g, in, in_c, 3, 1, 1, ActKind::kRelu6, in_c);
    return g.addConv2d(x, out_c, 1, 1, 1, 0, 1, 1, /*bias=*/true);
}

/** SSDLite extra feature layer: pw1x1(mid) + dw3x3/2 + pw1x1(out). */
NodeId
liteExtra(Graph& g, NodeId in, std::int64_t mid_c, std::int64_t out_c)
{
    NodeId x = convBnAct(g, in, mid_c, 1, 1, 0, ActKind::kRelu6);
    x = convBnAct(g, x, mid_c, 3, 2, 1, ActKind::kRelu6, mid_c);
    return convBnAct(g, x, out_c, 1, 1, 0, ActKind::kRelu6);
}

} // namespace

graph::Graph
buildSsdMobileNetV1(std::int64_t classes)
{
    Graph g("SSD MobileNet-v1");
    NodeId x = g.addInput({1, 3, 300, 300});
    x = convBnAct(g, x, 32, 3, 2, 1, ActKind::kRelu6, 1, "conv1");

    struct Ds { std::int64_t in_c, out_c, stride; };
    const Ds blocks[] = {
        {32, 64, 1},    {64, 128, 2},   {128, 128, 1},
        {128, 256, 2},  {256, 256, 1},  {256, 512, 2},
        {512, 512, 1},  {512, 512, 1},  {512, 512, 1},
        {512, 512, 1},  {512, 512, 1},  // conv11 -> 19x19x512
    };
    for (const auto& b : blocks)
        x = depthwiseSeparable(g, x, b.in_c, b.out_c, b.stride);
    const NodeId fm1 = x; // 19x19x512
    x = depthwiseSeparable(g, x, 512, 1024, 2);
    x = depthwiseSeparable(g, x, 1024, 1024, 1);
    const NodeId fm2 = x; // 10x10x1024

    const NodeId fm3 = liteExtra(g, fm2, 256, 512);  // 5x5
    const NodeId fm4 = liteExtra(g, fm3, 128, 256);  // 3x3
    const NodeId fm5 = liteExtra(g, fm4, 128, 256);  // 2x2
    const NodeId fm6 = liteExtra(g, fm5, 64, 128);   // 1x1

    struct Fm { NodeId node; std::int64_t c, anchors; };
    const Fm fms[] = {
        {fm1, 512, 3},  {fm2, 1024, 6}, {fm3, 512, 6},
        {fm4, 256, 6},  {fm5, 256, 6},  {fm6, 128, 6},
    };

    std::vector<NodeId> box_parts;
    std::vector<NodeId> cls_parts;
    std::int64_t total_boxes = 0;
    for (const auto& fm : fms) {
        const auto& s = g.node(fm.node).outShape;
        total_boxes += fm.anchors * s[2] * s[3];
        NodeId box = liteHead(g, fm.node, fm.c, fm.anchors * 4);
        NodeId cls = liteHead(g, fm.node, fm.c,
                              fm.anchors * classes);
        box_parts.push_back(g.addFlatten(box));
        cls_parts.push_back(g.addFlatten(cls));
    }
    NodeId boxes = g.addConcatLast(box_parts);
    boxes = g.addReshape(boxes, {1, total_boxes, 4});
    NodeId scores = g.addConcatLast(cls_parts);
    scores = g.addReshape(scores, {1, total_boxes, classes});
    scores = g.addActivation(scores, ActKind::kSigmoid);
    NodeId dets = g.addConcatLast({boxes, scores});
    dets = g.addDetectPostprocess(dets, classes, 0.5, 0.5,
                                  "nms");
    g.markOutput(dets);
    g.setInputDescription("300x300");
    return g;
}

} // namespace models
} // namespace edgebench
