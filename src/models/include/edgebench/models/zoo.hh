/**
 * @file
 * The model zoo: builders for every DNN model in Table I of the paper.
 *
 * All models are constructed as real computation graphs with exact
 * layer shapes; parameter and FLOP counts are validated against the
 * paper's Table I (see tests/models). The FLOP convention follows the
 * paper: one multiply-accumulate counts as one FLOP.
 *
 * Known deviations from Table I are documented per model in
 * DESIGN.md ("Known deviations") and encoded in ModelInfo tolerances.
 */

#ifndef EDGEBENCH_MODELS_ZOO_HH
#define EDGEBENCH_MODELS_ZOO_HH

#include <string>
#include <vector>

#include "edgebench/graph/graph.hh"

namespace edgebench
{
namespace models
{

/** The sixteen Table I models. */
enum class ModelId
{
    kResNet18,
    kResNet50,
    kResNet101,
    kXception,
    kMobileNetV2,
    kInceptionV4,
    kAlexNet,
    kVgg16,
    kVgg19,
    kVggS32,
    kVggS224,
    kCifarNet,
    kSsdMobileNetV1,
    kYoloV3,
    kTinyYolo,
    kC3d,
};

/** Static metadata + the paper's published Table I reference values. */
struct ModelInfo
{
    ModelId id;
    std::string name;       ///< Table I model name.
    std::string inputSize;  ///< Table I "Input Size" column.
    double paperGFlop;      ///< Table I FLOP (giga).
    double paperMParams;    ///< Table I parameters (millions).
    double paperFlopPerParam; ///< Table I FLOP/Param.
    /** Relative tolerance our implementation meets vs Table I. */
    double flopTolerance;
    double paramTolerance;
};

/** All models in Table I order. */
const std::vector<ModelId>& allModels();

/** Metadata for one model. */
const ModelInfo& modelInfo(ModelId id);

/** Look up a model id by its Table I name; throws if unknown. */
ModelId modelByName(const std::string& name);

/** Build any zoo model (deferred parameters, single batch). */
graph::Graph buildModel(ModelId id);

/** @name Individual builders */
/// @{
/** ResNet of depth 18, 50 or 101 (He et al.). */
graph::Graph buildResNet(int depth, std::int64_t classes = 1000,
                         std::int64_t image = 224);
/** VGG-16 / VGG-19 (Simonyan & Zisserman, configuration D / E). */
graph::Graph buildVgg(int depth, std::int64_t classes = 1000,
                      std::int64_t image = 224);
/** VGG-S / CNN-S (Chatfield et al.); image is 224 or 32. */
graph::Graph buildVggS(std::int64_t image, std::int64_t classes = 1000);
/**
 * AlexNet as characterized by the paper (grouped convolutions,
 * enlarged fc6 = 7168 to land at Table I's 102.14 M parameters).
 */
graph::Graph buildAlexNet(std::int64_t classes = 1000);
/** Canonical AlexNet (Krizhevsky et al., 61 M parameters). */
graph::Graph buildAlexNetCanonical(std::int64_t classes = 1000);
/** Compact CIFAR CNN sized to Table I (0.79 M params, 0.01 GFLOP). */
graph::Graph buildCifarNet(std::int64_t classes = 10);
/** MobileNet-v1 backbone-style classifier (Howard et al.). */
graph::Graph buildMobileNetV1(std::int64_t classes = 1000,
                              std::int64_t image = 224);
/** MobileNet-v2 (Sandler et al.). */
graph::Graph buildMobileNetV2(std::int64_t classes = 1000,
                              std::int64_t image = 224);
/** Inception-v4 (Szegedy et al.), built at its native 299x299. */
graph::Graph buildInceptionV4(std::int64_t classes = 1000);
/** Xception (Chollet), built at 224x224 to match Table I FLOPs. */
graph::Graph buildXception(std::int64_t classes = 1000,
                           std::int64_t image = 224);
/** SSDLite-style SSD with MobileNet-v1 feature extractor, 300x300. */
graph::Graph buildSsdMobileNetV1(std::int64_t classes = 91);
/** YOLOv3 on Darknet-53 (Redmon & Farhadi); image must be /32. */
graph::Graph buildYoloV3(std::int64_t classes = 80,
                         std::int64_t image = 448);
/** Tiny YOLO (v2 head; Redmon & Farhadi). */
graph::Graph buildTinyYolo(std::int64_t classes = 80,
                           std::int64_t image = 416);
/** C3D (Tran et al.) with the paper's 12x112x112 clip input. */
graph::Graph buildC3d(std::int64_t classes = 1000,
                      std::int64_t frames = 12);
/// @}

/**
 * @name Extension models (the paper's stated future work: "we plan to
 * extend our models to include more varieties of DNN models, such as
 * RNNs and LSTMs")
 */
/// @{
/** Two-layer LSTM character language model (Karpathy char-rnn). */
graph::Graph buildCharRnn(std::int64_t vocab = 128,
                          std::int64_t seq_len = 64,
                          std::int64_t hidden = 512);
/** GRU sequence classifier (sensor/keyword-spotting style). */
graph::Graph buildGruClassifier(std::int64_t features = 40,
                                std::int64_t seq_len = 100,
                                std::int64_t hidden = 256,
                                std::int64_t classes = 12);
/**
 * DeepSpeech2-lite: conv front-end over a spectrogram followed by
 * stacked LSTMs and a character-distribution head.
 */
graph::Graph buildDeepSpeech2Lite(std::int64_t time_steps = 200,
                                  std::int64_t freq_bins = 161,
                                  std::int64_t hidden = 800,
                                  std::int64_t alphabet = 29);

/** All three extension models (for sweeps). */
std::vector<graph::Graph> buildRecurrentExtensions();
/// @}

/**
 * @name Mobile-specific extension models (the paper's related work,
 * Section VIII group 2: handcrafted efficient architectures)
 */
/// @{
/** SqueezeNet v1.1 (Iandola et al., paper reference [84]). */
graph::Graph buildSqueezeNet(std::int64_t classes = 1000,
                             std::int64_t image = 224);
/** ShuffleNet v1, 1x, g groups (Zhang et al., reference [85]). */
graph::Graph buildShuffleNet(std::int64_t classes = 1000,
                             std::int64_t image = 224,
                             std::int64_t groups = 3);
/**
 * DenseNet-121 (Huang et al.) — the dense-connectivity family that
 * CondenseNet (reference [86]) builds on; exercises the concat-heavy
 * memory path of the cost model.
 */
graph::Graph buildDenseNet121(std::int64_t classes = 1000,
                              std::int64_t image = 224);
/// @}

} // namespace models
} // namespace edgebench

#endif // EDGEBENCH_MODELS_ZOO_HH
