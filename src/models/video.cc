/**
 * @file
 * C3D (Tran et al.): 3D-convolutional video recognition network, built
 * with the paper's 12-frame 112x112 clip input.
 */

#include "edgebench/models/zoo.hh"

#include "builder_util.hh"
#include "edgebench/core/common.hh"

namespace edgebench
{
namespace models
{

using namespace detail;

namespace
{

NodeId
conv3dRelu(Graph& g, NodeId in, std::int64_t out_c,
           const std::string& name)
{
    NodeId x = g.addConv3d(in, out_c, 3, 3, 3, 1, 1, 1, 1,
                           /*bias=*/true, name);
    return g.addActivation(x, ActKind::kRelu);
}

} // namespace

graph::Graph
buildC3d(std::int64_t classes, std::int64_t frames)
{
    EB_CHECK(frames >= 8, "buildC3d: need at least 8 frames");
    Graph g("C3D");
    NodeId x = g.addInput({1, 3, frames, 112, 112});

    x = conv3dRelu(g, x, 64, "conv1a");
    x = g.addMaxPool3d(x, 1, 2, 1, 2);             // D, 56
    x = conv3dRelu(g, x, 128, "conv2a");
    x = g.addMaxPool3d(x, 2, 2, 2, 2);             // D/2, 28
    x = conv3dRelu(g, x, 256, "conv3a");
    x = conv3dRelu(g, x, 256, "conv3b");
    x = g.addMaxPool3d(x, 2, 2, 2, 2);             // D/4, 14
    x = conv3dRelu(g, x, 512, "conv4a");
    x = conv3dRelu(g, x, 512, "conv4b");
    x = g.addMaxPool3d(x, 2, 2, 2, 2);             // D/8, 7
    x = conv3dRelu(g, x, 512, "conv5a");
    x = conv3dRelu(g, x, 512, "conv5b");
    // Spatial pad keeps the canonical 4x4 fc6 input (as the original
    // Caffe deploy net does).
    x = g.addMaxPool3d(x, 2, 2, 2, 2, 1, 1);       // 1, 4x4

    x = g.addFlatten(x);
    x = denseAct(g, x, 4096);
    x = denseAct(g, x, 4096);
    x = g.addDense(x, classes);
    x = g.addSoftmax(x);
    g.markOutput(x);
    g.setInputDescription("12x112x112");
    return g;
}

} // namespace models
} // namespace edgebench
