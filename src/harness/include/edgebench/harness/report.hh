/**
 * @file
 * ASCII table and figure-series emitters used by the bench binaries
 * to print paper-style tables and figure data.
 */

#ifndef EDGEBENCH_HARNESS_REPORT_HH
#define EDGEBENCH_HARNESS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace harness
{

/** A fixed-column ASCII table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    void print(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format helper: fixed-precision double. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * A named series of (label, value) points; prints as aligned rows.
 * Bench binaries use one Figure per paper figure, one series per
 * bar/line group.
 */
class Figure
{
  public:
    Figure(std::string id, std::string caption);

    void addSeries(const std::string& name,
                   const std::vector<std::string>& labels,
                   const std::vector<double>& values);

    void print(std::ostream& os) const;

  private:
    std::string id_;
    std::string caption_;
    struct Series
    {
        std::string name;
        std::vector<std::string> labels;
        std::vector<double> values;
    };
    std::vector<Series> series_;
};

/** Print a bench banner: "== fig2: <title> ==". */
void printBanner(std::ostream& os, const std::string& id,
                 const std::string& title);

/**
 * Fold a recorded trace into a Fig. 5-style software-stack table:
 * spans whose category is one of the six frameworks::phaseName
 * mnemonics are grouped by (name, category) in first-appearance
 * order, yielding columns Label / Phase / Time (ms) / Share (%).
 * Structural spans ("inference", "op", "run", ...) are excluded so
 * nothing is double-counted.
 */
Table traceBreakdown(const obs::Tracer& tracer);

} // namespace harness
} // namespace edgebench

#endif // EDGEBENCH_HARNESS_REPORT_HH
