/**
 * @file
 * Experiment runner: ties deployments, the measured-loop protocol of
 * the paper (Section V) and the experiment registry (Table IV)
 * together.
 */

#ifndef EDGEBENCH_HARNESS_EXPERIMENT_HH
#define EDGEBENCH_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "edgebench/core/rng.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/harness/stats.hh"

namespace edgebench
{
namespace harness
{

/**
 * Emulate the paper's timing protocol: run @p loops single-batch
 * inferences, exclude initialization, and report per-inference
 * statistics. Run-to-run jitter (scheduler noise, DVFS) is applied
 * deterministically from @p rng at @p jitter relative sigma.
 */
Stats timeInferenceLoop(const frameworks::InferenceSession& session,
                        std::int64_t loops, core::Rng& rng,
                        double jitter = 0.02);

/** One Table IV experiment descriptor. */
struct ExperimentInfo
{
    std::string id;       ///< "fig2", "table5", ...
    std::string section;  ///< paper section, e.g. "VI-A"
    std::string metric;   ///< what the experiment reports
    std::string benchTarget; ///< bench binary reproducing it
};

/** Registry of every reproduced table/figure (Table IV). */
const std::vector<ExperimentInfo>& experimentRegistry();

/** Lookup by id; throws when unknown. */
const ExperimentInfo& experiment(const std::string& id);

} // namespace harness
} // namespace edgebench

#endif // EDGEBENCH_HARNESS_EXPERIMENT_HH
