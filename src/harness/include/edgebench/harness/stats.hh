/**
 * @file
 * Summary statistics for repeated measurements.
 */

#ifndef EDGEBENCH_HARNESS_STATS_HH
#define EDGEBENCH_HARNESS_STATS_HH

#include <iosfwd>
#include <vector>

namespace edgebench
{
namespace harness
{

/** Summary of a sample set. */
struct Stats
{
    std::size_t count = 0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** Compute all fields from @p samples (must be non-empty). */
    static Stats of(std::vector<double> samples);

    /**
     * Linear-interpolation percentile of an ascending-@p sorted
     * sample set; @p p is in [0, 1] (p=0 -> min, p=1 -> max). An
     * empty sample set yields 0.0 so report code can emit "no
     * traffic" rows without special-casing.
     */
    static double percentile(const std::vector<double>& sorted,
                             double p);
};

/** Geometric mean of strictly positive values. */
double geomean(const std::vector<double>& values);

/**
 * Fixed-range histogram with underflow/overflow buckets and an ASCII
 * bar rendering (used for latency distributions in serving reports).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, int buckets);

    void add(double v);

    std::size_t total() const { return total_; }
    /** Count in bucket @p i (0..buckets-1). */
    std::size_t bucketCount(int i) const;
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(int i) const;

    /** Render as rows of "[lo, hi)  count  ####". */
    void print(std::ostream& os, int max_bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace harness
} // namespace edgebench

#endif // EDGEBENCH_HARNESS_STATS_HH
