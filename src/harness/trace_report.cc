#include "edgebench/harness/report.hh"

#include <map>
#include <utility>

#include "edgebench/frameworks/runtime.hh"

namespace edgebench
{
namespace harness
{

Table
traceBreakdown(const obs::Tracer& tracer)
{
    // Only the six Fig. 5 phase categories count toward the stack
    // breakdown; structural spans ("inference", "op", ...) wrap or
    // subdivide them and would double-count.
    const std::vector<std::string> phases = {
        frameworks::phaseName(frameworks::Phase::kLibraryLoading),
        frameworks::phaseName(frameworks::Phase::kGraphConstruction),
        frameworks::phaseName(frameworks::Phase::kWeightInit),
        frameworks::phaseName(frameworks::Phase::kDataTransfer),
        frameworks::phaseName(frameworks::Phase::kCompute),
        frameworks::phaseName(frameworks::Phase::kSessionManagement),
    };
    const auto isPhase = [&](const std::string& c) {
        for (const auto& p : phases)
            if (p == c)
                return true;
        return false;
    };

    using Key = std::pair<std::string, std::string>; // (name, category)
    std::vector<Key> order;
    std::map<Key, double> ms;
    double total = 0.0;
    for (const auto& e : tracer.events()) {
        if (e.kind != obs::EventKind::kSpan || !isPhase(e.category))
            continue;
        const Key k{e.name, e.category};
        if (ms.find(k) == ms.end())
            order.push_back(k);
        ms[k] += e.durMs();
        total += e.durMs();
    }

    Table t({"Label", "Phase", "Time (ms)", "Share (%)"});
    for (const auto& k : order) {
        const double v = ms[k];
        t.addRow({k.first, k.second, Table::num(v, 2),
                  Table::num(total > 0.0 ? 100.0 * v / total : 0.0, 1)});
    }
    return t;
}

} // namespace harness
} // namespace edgebench
