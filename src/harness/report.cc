#include "edgebench/harness/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace harness
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    EB_CHECK(!headers_.empty(), "Table: no headers");
}

void
Table::addRow(std::vector<std::string> cells)
{
    EB_CHECK(cells.size() == headers_.size(),
             "Table: row has " << cells.size() << " cells, expected "
                               << headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << " |\n";
    };
    emit(headers_);
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

Figure::Figure(std::string id, std::string caption)
    : id_(std::move(id)), caption_(std::move(caption))
{
}

void
Figure::addSeries(const std::string& name,
                  const std::vector<std::string>& labels,
                  const std::vector<double>& values)
{
    EB_CHECK(labels.size() == values.size(),
             "Figure: labels/values mismatch in series " << name);
    series_.push_back({name, labels, values});
}

void
Figure::print(std::ostream& os) const
{
    os << "-- " << id_ << ": " << caption_ << " --\n";
    for (const auto& s : series_) {
        os << "series: " << s.name << "\n";
        std::size_t w = 0;
        for (const auto& l : s.labels)
            w = std::max(w, l.size());
        for (std::size_t i = 0; i < s.labels.size(); ++i) {
            os << "  " << std::left
               << std::setw(static_cast<int>(w)) << s.labels[i]
               << "  " << Table::num(s.values[i], 3) << "\n";
        }
    }
}

void
printBanner(std::ostream& os, const std::string& id,
            const std::string& title)
{
    os << "\n== " << id << ": " << title << " ==\n";
}

} // namespace harness
} // namespace edgebench
