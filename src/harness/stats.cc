#include "edgebench/harness/stats.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace harness
{

Stats
Stats::of(std::vector<double> samples)
{
    EB_CHECK(!samples.empty(), "Stats::of: empty sample set");
    Stats s;
    s.count = samples.size();
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    const std::size_t n = samples.size();
    s.median = (n % 2 == 1)
        ? samples[n / 2]
        : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / static_cast<double>(n);
    double ss = 0.0;
    for (double v : samples)
        ss += (v - s.mean) * (v - s.mean);
    s.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
    return s;
}

double
Stats::percentile(const std::vector<double>& sorted, double p)
{
    EB_CHECK(p >= 0.0 && p <= 1.0,
             "Stats::percentile: p " << p << " outside [0, 1]");
    EB_CHECK(std::is_sorted(sorted.begin(), sorted.end()),
             "Stats::percentile: samples not sorted ascending");
    if (sorted.empty())
        return 0.0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
geomean(const std::vector<double>& values)
{
    EB_CHECK(!values.empty(), "geomean: empty input");
    double log_sum = 0.0;
    for (double v : values) {
        EB_CHECK(v > 0.0, "geomean: non-positive value " << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi),
      counts_(static_cast<std::size_t>(buckets), 0)
{
    EB_CHECK(hi > lo, "Histogram: hi " << hi << " <= lo " << lo);
    EB_CHECK(buckets > 0, "Histogram: need at least one bucket");
}

void
Histogram::add(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const auto n = counts_.size();
    auto idx = static_cast<std::size_t>(
        (v - lo_) / (hi_ - lo_) * static_cast<double>(n));
    if (idx >= n)
        idx = n - 1;
    ++counts_[idx];
}

std::size_t
Histogram::bucketCount(int i) const
{
    EB_CHECK(i >= 0 && static_cast<std::size_t>(i) < counts_.size(),
             "Histogram: bucket " << i << " out of range");
    return counts_[static_cast<std::size_t>(i)];
}

double
Histogram::bucketLow(int i) const
{
    EB_CHECK(i >= 0 && static_cast<std::size_t>(i) <= counts_.size(),
             "Histogram: edge " << i << " out of range");
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

void
Histogram::print(std::ostream& os, int max_bar_width) const
{
    std::size_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);
    if (underflow_ > 0)
        os << "  (<" << bucketLow(0) << ")  " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) /
            static_cast<double>(peak) * max_bar_width);
        os << "  [" << bucketLow(static_cast<int>(i)) << ", "
           << bucketLow(static_cast<int>(i) + 1) << ")  "
           << counts_[i] << "  " << std::string(bar, '#') << "\n";
    }
    if (overflow_ > 0)
        os << "  (>=" << hi_ << ")  " << overflow_ << "\n";
}

} // namespace harness
} // namespace edgebench
