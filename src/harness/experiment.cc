#include "edgebench/harness/experiment.hh"

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace harness
{

Stats
timeInferenceLoop(const frameworks::InferenceSession& session,
                  std::int64_t loops, core::Rng& rng, double jitter)
{
    EB_CHECK(loops > 0, "timeInferenceLoop: need at least one loop");
    EB_CHECK(jitter >= 0.0 && jitter < 0.5,
             "timeInferenceLoop: unreasonable jitter " << jitter);
    const double base = session.run(1).perInferenceMs;
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(loops));
    for (std::int64_t i = 0; i < loops; ++i) {
        const double noisy = base * (1.0 + rng.normal(0.0, jitter));
        samples.push_back(noisy > 0.0 ? noisy : base);
    }
    return Stats::of(samples);
}

const std::vector<ExperimentInfo>&
experimentRegistry()
{
    static const std::vector<ExperimentInfo> registry = {
        {"table1", "II", "model FLOP/params/FLOP-per-param",
         "bench_table1_models"},
        {"table2", "III", "framework traits matrix",
         "bench_table2_frameworks"},
        {"table3", "IV", "device specifications and power",
         "bench_table3_devices"},
        {"table5", "VI-A", "model x platform compatibility",
         "bench_table5_compat"},
        {"table6", "VI-F", "cooling instruments and idle temps",
         "bench_table6_cooling"},
        {"fig1", "II", "models sorted by FLOP/param",
         "bench_table1_models"},
        {"fig2", "VI-A", "time per inference, best framework per device",
         "bench_fig02_edge_inference"},
        {"fig3", "VI-B1", "RPi cross-framework time per inference",
         "bench_fig03_rpi_frameworks"},
        {"fig4", "VI-B1", "TX2 cross-framework time per inference",
         "bench_fig04_tx2_frameworks"},
        {"fig5", "VI-B3", "software-stack phase breakdown",
         "bench_fig05_software_stack"},
        {"fig6", "VI-B1", "GTX Titan X: TensorFlow vs PyTorch",
         "bench_fig06_gtx_tf_vs_pt"},
        {"fig7", "VI-B2", "Jetson Nano: PyTorch vs TensorRT",
         "bench_fig07_nano_tensorrt"},
        {"fig8", "VI-B2", "RPi: PyTorch vs TensorFlow vs TFLite",
         "bench_fig08_rpi_tflite"},
        {"fig9", "VI-C", "edge vs HPC time per inference",
         "bench_fig09_edge_vs_hpc"},
        {"fig10", "VI-C", "speedup over Jetson TX2",
         "bench_fig10_speedup_tx2"},
        {"fig11", "VI-E", "energy per inference",
         "bench_fig11_energy"},
        {"fig12", "VI-E", "inference time vs active power",
         "bench_fig12_time_vs_power"},
        {"fig13", "VI-D", "bare metal vs Docker slowdown",
         "bench_fig13_virtualization"},
        {"fig14", "VI-F", "temperature behaviour under load",
         "bench_fig14_temperature"},
    };
    return registry;
}

const ExperimentInfo&
experiment(const std::string& id)
{
    for (const auto& e : experimentRegistry())
        if (e.id == id)
            return e;
    throw InvalidArgumentError("experiment: unknown id '" + id + "'");
}

} // namespace harness
} // namespace edgebench
