#include "edgebench/thermal/thermal.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace thermal
{

namespace
{

struct Entry
{
    hw::DeviceId id;
    CoolingSpec cooling;
    ThermalParams params;
};

/**
 * Table VI cooling data plus RC parameters calibrated so that (a)
 * idle surface temperatures reproduce Table VI at the devices' idle
 * power, and (b) loaded behaviour reproduces Fig. 14 (TX2/Nano fans
 * activate, RPi trips its thermal limit, Movidius barely warms).
 */
const std::vector<Entry>&
table()
{
    static const std::vector<Entry> entries = {
        {hw::DeviceId::kRpi3,
         {true, "14x14 mm", false, 43.3, false},
         {.rJunctionHeatsink = 4.0, .rHeatsinkAmbient = 13.76,
          .rHeatsinkAmbientFan = 13.76, .cJunction = 15.0,
          .cHeatsink = 60.0, .fanOnSurfaceC = 1e9,
          .fanOffSurfaceC = 1e9, .throttleJunctionC = 60.0,
          .throttleSlowdown = 1.8, .shutdownJunctionC = 70.0}},
        {hw::DeviceId::kJetsonTx2,
         {true, "80x55x20 mm", true, 32.4, true},
         {.rJunctionHeatsink = 0.8, .rHeatsinkAmbient = 3.9,
          .rHeatsinkAmbientFan = 1.5, .cJunction = 25.0,
          .cHeatsink = 150.0, .fanOnSurfaceC = 40.0,
          .fanOffSurfaceC = 35.0, .shutdownJunctionC = 1e9}},
        {hw::DeviceId::kJetsonNano,
         {true, "59x39x17 mm", true, 35.2, true},
         {.rJunctionHeatsink = 1.0, .rHeatsinkAmbient = 8.16,
          .rHeatsinkAmbientFan = 3.6, .cJunction = 20.0,
          .cHeatsink = 100.0, .fanOnSurfaceC = 45.0,
          .fanOffSurfaceC = 40.0, .shutdownJunctionC = 1e9}},
        {hw::DeviceId::kEdgeTpu,
         {true, "44x40x9 mm", true, 33.9, false},
         {.rJunctionHeatsink = 1.0, .rHeatsinkAmbient = 2.75,
          .rHeatsinkAmbientFan = 1.8, .cJunction = 15.0,
          .cHeatsink = 80.0, .fanOnSurfaceC = 50.0,
          .fanOffSurfaceC = 45.0, .shutdownJunctionC = 1e9}},
        {hw::DeviceId::kMovidius,
         {true, "USB stick body (60x27x14 mm)", false, 25.8, false},
         {.rJunctionHeatsink = 2.0, .rHeatsinkAmbient = 2.2,
          .rHeatsinkAmbientFan = 2.2, .cJunction = 5.0,
          .cHeatsink = 30.0, .fanOnSurfaceC = 1e9,
          .fanOffSurfaceC = 1e9, .shutdownJunctionC = 1e9}},
    };
    return entries;
}

const Entry&
entry(hw::DeviceId id)
{
    for (const auto& e : table())
        if (e.id == id)
            return e;
    throw InvalidArgumentError(
        "thermal: no cooling data for " + hw::deviceName(id) +
        " (the paper instruments edge devices only)");
}

} // namespace

const CoolingSpec&
coolingSpec(hw::DeviceId id)
{
    return entry(id).cooling;
}

const ThermalParams&
thermalParams(hw::DeviceId id)
{
    return entry(id).params;
}

double
TemperatureTrace::finalSurfaceC() const
{
    EB_CHECK(!surfaceC.empty(), "empty temperature trace");
    return surfaceC.back();
}

bool
TemperatureTrace::sawEvent(ThermalEvent e) const
{
    for (const auto& rec : events)
        if (rec.event == e)
            return true;
    return false;
}

ThermalSimulator::ThermalSimulator(hw::DeviceId device,
                                   double ambient_c)
    : device_(device), params_(thermalParams(device)),
      ambient_c_(ambient_c)
{
    // Start from the idle steady state at the device's idle power.
    const double idle_w = hw::deviceSpec(device).idlePowerW;
    surface_c_ = ambient_c_ + idle_w * params_.rHeatsinkAmbient;
    junction_c_ = surface_c_ + idle_w * params_.rJunctionHeatsink;
}

void
ThermalSimulator::step(double power_w, double dt_s)
{
    EB_CHECK(dt_s > 0.0, "step: non-positive dt");
    EB_CHECK(power_w >= 0.0, "step: negative power");
    if (shut_down_)
        power_w = 0.0;

    // Fan control with hysteresis on the surface temperature.
    if (!fan_on_ && surface_c_ >= params_.fanOnSurfaceC) {
        fan_on_ = true;
        events_.push_back({time_s_, ThermalEvent::kFanOn});
    } else if (fan_on_ && surface_c_ <= params_.fanOffSurfaceC) {
        fan_on_ = false;
        events_.push_back({time_s_, ThermalEvent::kFanOff});
    }
    const double r_ha = fan_on_ ? params_.rHeatsinkAmbientFan
                                : params_.rHeatsinkAmbient;

    // Forward Euler with substeps bounded for stability.
    const double max_sub = 0.25 *
        std::min(params_.cJunction * params_.rJunctionHeatsink,
                 params_.cHeatsink * r_ha);
    const int substeps = std::max(
        1, static_cast<int>(std::ceil(dt_s / std::max(max_sub, 1e-3))));
    const double h = dt_s / substeps;
    for (int i = 0; i < substeps; ++i) {
        const double q_jh =
            (junction_c_ - surface_c_) / params_.rJunctionHeatsink;
        const double q_ha = (surface_c_ - ambient_c_) / r_ha;
        junction_c_ += h * (power_w - q_jh) / params_.cJunction;
        surface_c_ += h * (q_jh - q_ha) / params_.cHeatsink;
    }
    time_s_ += dt_s;

    // Soft throttle with 5 degC hysteresis on the junction.
    if (!throttled_ && junction_c_ >= params_.throttleJunctionC) {
        throttled_ = true;
        events_.push_back({time_s_, ThermalEvent::kThrottleOn});
    } else if (throttled_ &&
               junction_c_ <= params_.throttleJunctionC - 5.0) {
        throttled_ = false;
        events_.push_back({time_s_, ThermalEvent::kThrottleOff});
    }

    if (!shut_down_ && junction_c_ >= params_.shutdownJunctionC) {
        shut_down_ = true;
        events_.push_back({time_s_, ThermalEvent::kShutdown});
    }
}

TemperatureTrace
ThermalSimulator::simulate(const power::PowerFunction& power,
                           double duration_s, double sample_every_s)
{
    return simulateImpl(power, duration_s, sample_every_s, false);
}

TemperatureTrace
ThermalSimulator::runToSteadyState(double power_w,
                                   double max_duration_s)
{
    return simulateImpl([power_w](double) { return power_w; },
                        max_duration_s, 1.0, true);
}

TemperatureTrace
ThermalSimulator::simulateImpl(const power::PowerFunction& power,
                               double duration_s,
                               double sample_every_s,
                               bool stop_at_steady)
{
    EB_CHECK(duration_s > 0.0 && sample_every_s > 0.0,
             "simulate: bad durations");
    TemperatureTrace trace;
    events_.clear();
    trace.timeS.push_back(time_s_);
    trace.surfaceC.push_back(surface_c_);
    trace.junctionC.push_back(junction_c_);

    const double t_end = time_s_ + duration_s;
    while (time_s_ < t_end - 1e-9) {
        const double prev_j = junction_c_;
        const double prev_s = surface_c_;
        step(power(time_s_), sample_every_s);
        trace.timeS.push_back(time_s_);
        trace.surfaceC.push_back(surface_c_);
        trace.junctionC.push_back(junction_c_);
        if (stop_at_steady && !shut_down_) {
            const double dj =
                std::fabs(junction_c_ - prev_j) / sample_every_s;
            const double ds =
                std::fabs(surface_c_ - prev_s) / sample_every_s;
            if (dj < 1e-4 && ds < 1e-4)
                break;
        }
        if (stop_at_steady && shut_down_ &&
            std::fabs(surface_c_ - prev_s) < 1e-4)
            break;
    }
    trace.events = events_;
    return trace;
}

void
annotateTraceTemperature(obs::Tracer& tracer, hw::DeviceId device,
                         double power_w, double ambient_c)
{
    EB_CHECK(power_w >= 0.0,
             "annotateTraceTemperature: negative power");
    auto& events = tracer.events();

    // Walk the RC network through event start times in chronological
    // order (the event vector is in emission order, which recordSpanAt
    // users may violate).
    std::vector<std::size_t> order(events.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return events[a].startUs < events[b].startUs;
                     });

    ThermalSimulator sim(device, ambient_c);
    double cursor_s = 0.0;
    for (const std::size_t i : order) {
        auto& e = events[i];
        const double at_s = e.startUs / 1e6;
        if (at_s > cursor_s && !sim.shutDown()) {
            sim.step(power_w, at_s - cursor_s);
            cursor_s = at_s;
        }
        obs::TraceArg a;
        a.key = "surface_C";
        a.number = sim.surfaceC();
        a.numeric = true;
        e.args.push_back(std::move(a));
    }
}

} // namespace thermal
} // namespace edgebench
