/**
 * @file
 * RC thermal simulator (paper Section VI-F, Fig. 14, Table VI).
 *
 * Two-node lumped thermal network per device:
 *
 *   P -> [junction] --R_jh--> [heatsink surface] --R_ha--> ambient
 *           C_j                     C_h
 *
 * The thermal camera in the paper reads the heatsink surface, which
 * sits 5-10 degC below the junction; fans cut R_ha when the surface
 * crosses the fan trip point; the RPi's junction crossing its trip
 * limit reproduces the "Device Shutdown" event in Fig. 14.
 */

#ifndef EDGEBENCH_THERMAL_THERMAL_HH
#define EDGEBENCH_THERMAL_THERMAL_HH

#include <string>
#include <vector>

#include "edgebench/hw/device.hh"
#include "edgebench/obs/trace.hh"
#include "edgebench/power/meter.hh"

namespace edgebench
{
namespace thermal
{

/** Table VI cooling-instrument description. */
struct CoolingSpec
{
    bool heatsink = false;
    std::string heatsinkSize;
    bool fan = false;
    /** Measured idle surface temperature, degC (Table VI). */
    double idleTempC = 0.0;
    /** Whether the paper observed the fan activating (Fig. 14). */
    bool fanActivates = false;
};

/** Table VI entry for an edge device; throws for HPC platforms. */
const CoolingSpec& coolingSpec(hw::DeviceId id);

/** Lumped RC parameters of a device's thermal network. */
struct ThermalParams
{
    double rJunctionHeatsink = 1.0; ///< K/W
    double rHeatsinkAmbient = 5.0;  ///< K/W, fan off
    double rHeatsinkAmbientFan = 5.0; ///< K/W, fan on
    double cJunction = 20.0;        ///< J/K
    double cHeatsink = 80.0;        ///< J/K
    double fanOnSurfaceC = 1e9;     ///< fan trip point (surface)
    double fanOffSurfaceC = 1e9;    ///< fan release (hysteresis)
    /** Soft-throttle trip point (junction); clocks drop above it. */
    double throttleJunctionC = 1e9;
    /** Service-time multiplier while throttled (>= 1). */
    double throttleSlowdown = 1.0;
    double shutdownJunctionC = 1e9; ///< thermal trip (junction)
};

/** Calibrated parameters for an edge device. */
const ThermalParams& thermalParams(hw::DeviceId id);

/** Events the simulator can emit. */
enum class ThermalEvent
{
    kFanOn,
    kFanOff,
    kThrottleOn,
    kThrottleOff,
    kShutdown,
};

/** One recorded event. */
struct ThermalEventRecord
{
    double timeS = 0.0;
    ThermalEvent event;
};

/** A simulated temperature trace. */
struct TemperatureTrace
{
    std::vector<double> timeS;
    std::vector<double> surfaceC;
    std::vector<double> junctionC;
    std::vector<ThermalEventRecord> events;

    double finalSurfaceC() const;
    bool sawEvent(ThermalEvent e) const;
};

class ThermalSimulator
{
  public:
    ThermalSimulator(hw::DeviceId device, double ambient_c = 25.0);

    /** Advance the network by @p dt_s at dissipation @p power_w. */
    void step(double power_w, double dt_s);

    double junctionC() const { return junction_c_; }
    double surfaceC() const { return surface_c_; }
    bool fanOn() const { return fan_on_; }
    /** True while the soft thermal throttle is engaged. */
    bool throttled() const { return throttled_; }
    /** Current service-time multiplier (throttleSlowdown or 1). */
    double slowdownFactor() const
    {
        return throttled_ ? params_.throttleSlowdown : 1.0;
    }
    bool shutDown() const { return shut_down_; }
    double timeS() const { return time_s_; }

    /**
     * Simulate @p duration_s seconds of @p power, sampling every
     * @p sample_every_s. A shutdown drops power to zero for the rest
     * of the run (the device turns off).
     */
    TemperatureTrace simulate(const power::PowerFunction& power,
                              double duration_s,
                              double sample_every_s = 1.0);

    /**
     * Run at constant power until |dT/dt| of both nodes falls below
     * 1e-4 K/s (or shutdown). Returns the trace.
     */
    TemperatureTrace runToSteadyState(double power_w,
                                      double max_duration_s = 7200.0);

  private:
    hw::DeviceId device_;
    ThermalParams params_;
    double ambient_c_;
    double junction_c_;
    double surface_c_;
    bool fan_on_ = false;
    bool throttled_ = false;
    bool shut_down_ = false;
    double time_s_ = 0.0;
    std::vector<ThermalEventRecord> events_;

    friend class ThermalSimulatorTestPeer;
    TemperatureTrace simulateImpl(const power::PowerFunction& power,
                                  double duration_s,
                                  double sample_every_s,
                                  bool stop_at_steady);
};

/**
 * Attach a "surface_C" attribute to every span in @p tracer: the
 * device's modeled heatsink-surface temperature at the span's start,
 * obtained by walking the RC thermal network across the trace
 * timeline at constant dissipation @p power_w. An annotation pass
 * like power::annotateTraceEnergy — run it after recording. Throws
 * InvalidArgumentError for platforms without thermal instrumentation
 * (HPC machines, Table VI covers edge devices only).
 */
void annotateTraceTemperature(obs::Tracer& tracer, hw::DeviceId device,
                              double power_w, double ambient_c = 25.0);

} // namespace thermal
} // namespace edgebench

#endif // EDGEBENCH_THERMAL_THERMAL_HH
